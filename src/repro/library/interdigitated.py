"""Interdigitated and patterned transistor rows.

The paper's complex modules (blocks A, C and E of the amplifier) are built
from rows of gate fingers with shared diffusion columns.  A row is described
by a finger pattern string — e.g. ``"AABB"`` or the module-E row
``"DDABABDDDDBABADD"`` — where each letter selects a device and ``D`` marks a
dummy transistor (gate and drain strapped to the source potential, the
classic matching aid).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..compact import Compactor
from ..db import LayoutObject
from ..geometry import Direction, Rect
from ..primitives import tworects
from ..route import wire
from ..tech import Technology
from .contact_row import contact_row
from ..obs.provenance import provenance_entity


@dataclass
class DeviceNets:
    """Nets of one device letter in a pattern.

    ``gate_side`` optionally overrides the row default so two cross-coupled
    devices can contact their gates on opposite sides (planar gate rails).
    """

    gate: str
    drain: str
    gate_side: Optional[str] = None


def via_landing_um(tech: Technology) -> float:
    """Smallest metal1 width (µm) that fully encloses a via landing."""
    return (
        tech.cut_size("via") + 2 * tech.enclosure_or_zero("metal1", "via")
    ) / tech.dbu_per_micron


@provenance_entity("Finger")
def finger(
    tech: Technology,
    w: float,
    length: float,
    gate_net: str,
    left_net: str,
    right_net: str,
    compactor: Compactor,
    name: str,
    gate_contact: bool = True,
    gate_side: str = "north",
    gate_row_length: Optional[float] = None,
    gate_row_width: Optional[float] = None,
    gate_row_variable: bool = True,
    col_metal_min: Optional[float] = None,
) -> LayoutObject:
    """One gate finger with its two diffusion columns and gate row.

    ``gate_row_length`` / ``gate_row_width`` size the poly contact row
    beyond the defaults — needed when module wiring must land a via on the
    row metal (see :func:`via_landing_um`); pass ``gate_row_variable=False``
    in that case so compaction cannot shrink the landing below via size.
    ``col_metal_min`` bounds the diffusion-column metal width (a via
    landing) while leaving its edges variable.
    """
    obj = LayoutObject(name, tech)
    core = LayoutObject(f"{name}_core", tech)
    tworects(core, "poly", "pdiff", tech.um(w), tech.um(length), gate_net=gate_net)
    compactor.compact(obj, core, Direction.SOUTH)
    if gate_contact:
        row_length = gate_row_length if gate_row_length is not None else length
        gate_row = contact_row(
            tech, "poly", w=gate_row_width, length=row_length,
            net=gate_net, name=f"{name}_g",
            variable_metal=gate_row_variable,
        )
        gate_dir = Direction.SOUTH if gate_side == "north" else Direction.NORTH
        # No ignore list: the row's poly merges with the gate poly through
        # the same-potential rule, while poly-to-active spacing keeps the
        # row off the diffusion (the endcap overlap makes the connection).
        compactor.compact(obj, gate_row, gate_dir)
    col_height = None if col_metal_min is None else w
    right_col = contact_row(
        tech, "pdiff", w=w, net=right_net, name=f"{name}_r",
        metal_min_width=col_metal_min, metal_min_height=col_height,
    )
    compactor.compact(obj, right_col, Direction.WEST, ignore_layers=("pdiff",))
    left_col = contact_row(
        tech, "pdiff", w=w, net=left_net, name=f"{name}_l",
        metal_min_width=col_metal_min, metal_min_height=col_height,
    )
    compactor.compact(obj, left_col, Direction.EAST, ignore_layers=("pdiff",))
    return obj


@provenance_entity("PatternedRow")
def patterned_row(
    tech: Technology,
    w: float,
    length: float,
    pattern: str,
    devices: Dict[str, DeviceNets],
    source_net: str = "vss",
    dummy_letter: str = "D",
    gate_side: str = "north",
    gate_row_length: Optional[float] = None,
    gate_row_width: Optional[float] = None,
    gate_row_variable: bool = True,
    col_metal_min: Optional[float] = None,
    compactor: Optional[Compactor] = None,
    name: str = "Row",
) -> LayoutObject:
    """Build a row of gate fingers following *pattern*.

    Every finger alternates orientation so neighbouring fingers share their
    source columns (merged by the same-potential rule); drains face outward
    on alternating sides.  Dummy fingers tie gate and drain to *source_net*.
    """
    if compactor is None:
        compactor = Compactor()
    if not pattern:
        raise ValueError("empty finger pattern")
    for letter in pattern:
        if letter != dummy_letter and letter not in devices:
            raise ValueError(f"pattern letter {letter!r} has no device nets")

    row = LayoutObject(name, tech)
    previous_right: Optional[str] = None
    for index, letter in enumerate(pattern):
        if letter == dummy_letter:
            nets = DeviceNets(gate=source_net, drain=source_net)
        else:
            nets = devices[letter]
        # Even fingers: source west / drain east; odd fingers mirrored, so
        # source columns meet source columns and merge.
        if index % 2 == 0:
            left, right = source_net, nets.drain
        else:
            left, right = nets.drain, source_net
        side = nets.gate_side if nets.gate_side is not None else gate_side
        piece = finger(
            tech, w, length, nets.gate, left, right, compactor,
            name=f"{name}_f{index}", gate_side=side,
            gate_row_length=gate_row_length, gate_row_width=gate_row_width,
            gate_row_variable=gate_row_variable, col_metal_min=col_metal_min,
        )
        # Diffusion is only "not relevant" (merged) when the meeting columns
        # share a potential; different nets must keep diffusion spacing.
        if index == 0 or previous_right == left:
            ignore = ("pdiff",)
        else:
            ignore = ()
        compactor.compact(row, piece, Direction.WEST, ignore_layers=ignore)
        previous_right = right
    return row


@provenance_entity("InterdigitatedTransistor")
def interdigitated_transistor(
    tech: Technology,
    w: float,
    length: float,
    fingers: int,
    gate_net: str = "g",
    source_net: str = "s",
    drain_net: str = "d",
    col_metal_min: Optional[float] = None,
    compactor: Optional[Compactor] = None,
    name: str = "Interdigitated",
) -> LayoutObject:
    """A single device split into *fingers* parallel gate fingers.

    This is block A's "inter-digital MOS transistor" style: all fingers share
    gate, source and drain nets, so every inner diffusion column is shared.
    """
    if fingers < 1:
        raise ValueError("fingers must be >= 1")
    devices = {"A": DeviceNets(gate=gate_net, drain=drain_net)}
    return patterned_row(
        tech,
        w,
        length,
        "A" * fingers,
        devices,
        source_net=source_net,
        col_metal_min=col_metal_min,
        compactor=compactor,
        name=name,
    )


def strap_net(
    obj: LayoutObject,
    net: str,
    side: Direction,
    layer: str = "metal1",
    width: Optional[int] = None,
    compactor: Optional[Compactor] = None,
) -> LayoutObject:
    """Compact a metal strap onto one side, auto-connecting a net (Fig. 5a).

    "Simple wiring can be performed by compacting a rectangle whose edges are
    on the same potential as the edges of the rectangles which shall be
    connected."  The strap spans the object's full perpendicular extent and
    is compacted toward *side*; same-net columns are connected automatically.
    """
    if compactor is None:
        compactor = Compactor()
    if width is None:
        width = obj.tech.min_width(layer)
    box = obj.bbox()
    if box is None:
        raise ValueError("cannot strap an empty object")
    strap = LayoutObject(f"{obj.name}_strap_{net}", obj.tech)
    if side.axis is side.axis.VERTICAL:
        strap.add_rect(Rect(box.x1, 0, box.x2, width, layer, net))
    else:
        strap.add_rect(Rect(0, box.y1, width, box.y2, layer, net))
    compactor.compact(obj, strap, side)
    return obj

"""Module E: the centroidal cross-coupled differential pair (Fig. 10).

"The differential pair in block E consists of centroidal cross-coupled
inter-digital transistors with eight dummy transistors in the middle and
four dummy transistors on the right and left side ... the wiring is fully
symmetrical and every net has identical crossings."

Construction guarantees, and how each paper claim maps onto them:

* **device symmetry** — each row is built as a west half, mirrored (with
  nets swapped) into the east half, and row 2 is the net-swapped x-mirror of
  row 1.  The module is therefore exactly symmetric under
  (mirror-about-vertical-axis + net swap), under (mirror-about-horizontal-
  axis + net swap), and — composing both — under pure 180° rotation: the
  textbook 2-D common centroid.
* **dummy counts** — the half-row pattern ``DDABAB DD`` yields 8 dummies in
  the middle (4 per row), 4 on the left and 4 on the right over the full
  module: the paper's exact numbers.
* **identical crossings** — both nets of each matched pair receive exactly
  the same number of via stacks and tie wires; the A-net and B-net wiring
  trees are congruent (equal segment lengths), with A trunked on the west
  edge and B on the east.  Wire bands are planned so no same-layer wires
  ever cross.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..compact import Compactor
from ..db import LayoutObject
from ..geometry import Direction, Rect
from ..route import via_stack, wire
from ..tech import Technology
from .interdigitated import DeviceNets, patterned_row, via_landing_um
from ..obs.provenance import provenance_entity

#: West half of one row: 2 outer dummies, A/B interleave, 2 centre dummies.
HALF_PATTERN = "DDABAB" + "DD"


@provenance_entity("CentroidCrossCoupledPair")
def centroid_cross_coupled_pair(
    tech: Technology,
    w: float = 10.0,
    length: float = 1.0,
    gate_nets: Tuple[str, str] = ("gA", "gB"),
    drain_nets: Tuple[str, str] = ("outA", "outB"),
    source_net: str = "vss",
    half_pattern: str = HALF_PATTERN,
    wiring: bool = True,
    compactor: Optional[Compactor] = None,
    name: str = "ModuleE",
) -> LayoutObject:
    """Build the module-E differential pair (dimensions in microns)."""
    if compactor is None:
        compactor = Compactor()
    swap = {
        gate_nets[0]: gate_nets[1],
        gate_nets[1]: gate_nets[0],
        drain_nets[0]: drain_nets[1],
        drain_nets[1]: drain_nets[0],
    }
    devices = {
        "A": DeviceNets(gate=gate_nets[0], drain=drain_nets[0]),
        "B": DeviceNets(gate=gate_nets[1], drain=drain_nets[1]),
    }
    landing = via_landing_um(tech)

    row1 = _mirror_symmetric_row(
        tech, w, length, half_pattern, devices, source_net, swap,
        compactor, f"{name}_row1", gate_side="north", landing=landing,
    )
    # Row 2: net-swapped x-mirror of row 1 → 2-D common centroid, gate rows
    # facing outward (south).
    row2 = row1.copy(f"{name}_row2")
    row2.rename_nets(swap)
    box1 = row1.bbox()
    assert box1 is not None
    row2.mirror_x(axis_y=(box1.y1 + box1.y2) // 2)

    module = LayoutObject(name, tech)
    compactor.compact(module, row1, Direction.SOUTH)

    # Common-source strap along the seam (Fig. 5a auto-connection), then the
    # second row below it — NORTH compaction arrives on the south side, so
    # both rows' gate rails end up facing outward.
    box = module.bbox()
    assert box is not None
    strap = LayoutObject(f"{name}_vss", tech)
    strap_w = 2 * tech.min_width("metal1")
    strap.add_rect(Rect(box.x1, 0, box.x2, strap_w, "metal1", source_net))
    compactor.compact(module, strap, Direction.NORTH)
    compactor.compact(module, row2, Direction.NORTH, ignore_layers=("pdiff",))

    if wiring:
        _module_wiring(module, tech, gate_nets, drain_nets, source_net)
    return module


def _mirror_symmetric_row(
    tech: Technology,
    w: float,
    length: float,
    half_pattern: str,
    devices: Dict[str, DeviceNets],
    source_net: str,
    swap: Dict[str, str],
    compactor: Compactor,
    name: str,
    gate_side: str,
    landing: float,
) -> LayoutObject:
    """One finger row built as west half + exact east mirror (nets swapped)."""
    west = patterned_row(
        tech, w, length, half_pattern, devices,
        source_net=source_net, gate_side=gate_side,
        gate_row_length=max(length, landing),
        gate_row_width=landing,
        gate_row_variable=False,
        col_metal_min=landing,
        compactor=compactor, name=f"{name}_west",
    )
    east = west.copy(f"{name}_east")
    east.rename_nets(swap)
    east.mirror_y(axis_x=0)

    row = LayoutObject(name, tech)
    compactor.compact(row, west, Direction.WEST)
    compactor.compact(row, east, Direction.WEST, ignore_layers=("pdiff",))
    return row


# ---------------------------------------------------------------------------
# wiring
# ---------------------------------------------------------------------------
def _module_wiring(
    module: LayoutObject,
    tech: Technology,
    gate_nets: Tuple[str, str],
    drain_nets: Tuple[str, str],
    source_net: str,
) -> None:
    """Planar, matched pair wiring (see module docstring for guarantees).

    Vertical band plan (top to bottom, mirrored below the seam):
    vss rail › stub-tie band (gate B) › gate rows (direct ties, gate A) ›
    drain bridges › seam strap.  Horizontal trunk plan: vss verticals
    outermost, then the gate trunk, then the drain trunk; net A trunks west,
    net B trunks east.
    """
    box = module.bbox()
    assert box is not None
    m1w = tech.min_width("metal1")
    m1s = tech.min_space("metal1", "metal1") or m1w
    m2w = tech.min_width("metal2")
    m2s = tech.min_space("metal2", "metal2") or m2w
    pitch2 = m2w + m2s
    plate = tech.cut_size("via") + 2 * tech.enclosure_or_zero("metal1", "via")

    # Trunk columns must clear each other even where a duck via plate sits
    # on one of them: plate half + metal2 space + wire half.
    trunk_pitch = plate // 2 + m2s + m2w // 2 + m2s
    gate_trunk_a = box.x1 - 2 * trunk_pitch
    drain_trunk_a = box.x1 - trunk_pitch
    gate_trunk_b = box.x2 + 2 * trunk_pitch
    drain_trunk_b = box.x2 + trunk_pitch
    vss_x_west = box.x1 - 4 * trunk_pitch
    vss_x_east = box.x2 + 4 * trunk_pitch

    # All geometric references are taken from the *pre-wiring* module and
    # frozen here: adding wires grows the bounding box, so anything derived
    # from it mid-flight (notably the seam midline used to mirror the lower
    # half) would drift and misplace later wires.
    rows = _gate_rows(module)
    mid = (box.y1 + box.y2) // 2
    seam = box.y1 + box.y2
    # The stub band hosts metal2 (the net-B tie): it must clear the net-A
    # via plates sitting on the rows by the metal2 rule, not just metal1.
    rows_top = max(r.y2 for r in rows)
    stub_band = rows_top + max(m1s, m2s) + plate // 2
    stub_band_lower = seam - stub_band

    # --- gate nets -------------------------------------------------------
    gate_a_ties = _tie_gate_net(
        module, tech, gate_nets[0], trunk_x=gate_trunk_a,
        direct=True, stub_bands=(stub_band, stub_band_lower),
        mid=mid, plate=plate, m2w=m2w,
    )
    gate_b_ties = _tie_gate_net(
        module, tech, gate_nets[1], trunk_x=gate_trunk_b,
        direct=False, stub_bands=(stub_band, stub_band_lower),
        mid=mid, plate=plate, m2w=m2w,
    )

    # --- drain nets ------------------------------------------------------
    # Bridge vias must keep metal1 spacing to the gate-row band diagonally
    # above/below them; clamp the via band accordingly.
    upper_rows = [r for r in rows if (r.y1 + r.y2) // 2 > mid]
    lower_rows = [r for r in rows if (r.y1 + r.y2) // 2 <= mid]
    upper_rows_bottom = min((r.y1 for r in upper_rows), default=box.y2)
    lower_rows_top = max((r.y2 for r in lower_rows), default=box.y1)
    # The gate tie (metal2) runs through the row centres; bridge via plates
    # must clear it by the metal2 rule and the rows by the metal1 rule.
    upper_tie_bottom = min(
        ((r.y1 + r.y2) // 2 - m2w // 2 for r in upper_rows), default=box.y2
    )
    lower_tie_top = max(
        ((r.y1 + r.y2) // 2 + m2w // 2 for r in lower_rows), default=box.y1
    )
    clamp = (
        min(upper_rows_bottom - m1s, upper_tie_bottom - m2s) - plate // 2,
        max(lower_rows_top + m1s, lower_tie_top + m2s) + plate // 2,
    )
    # Net A bridges near the seam in both halves, net B far from it: each
    # net's own bridges mirror about the seam, and the two nets never share
    # a metal2 band.
    drain_a_ties = _tie_drain_net(
        module, tech, drain_nets[0], drain_trunk_a, (0.25, 0.75),
        m2w, plate, clamp, mid=mid)
    drain_b_ties = _tie_drain_net(
        module, tech, drain_nets[1], drain_trunk_b, (0.75, 0.25),
        m2w, plate, clamp, mid=mid)

    # --- vss: dummy gate rows + seam strap + perimeter loop ---------------
    # The rail must clear not only the stub band but also the drain-port
    # duck vias that cross the net-B stub tie just outside the module.
    rail_y = stub_band + m2w // 2 + m2s + plate + m1s + m1w // 2
    _tie_vss(
        module, tech, source_net,
        rails=(rail_y, seam - rail_y), mid=mid,
        x_west=vss_x_west, x_east=vss_x_east, m1w=m1w,
    )

    # --- escape ports ------------------------------------------------------
    # Every pair net exits at the module's south edge so parent layouts can
    # tap it from clear sky.  Gate trunks simply extend; drain ports duck
    # under the lower gate tie on metal1 (two extra vias — mirrored for net
    # B, so the pair's crossing counts stay identical).
    y_port = (seam - rail_y) - m1w // 2 - 2 * pitch2
    wire(module, "metal2", (gate_trunk_a, min(gate_a_ties)),
         (gate_trunk_a, y_port), width=m2w, net=gate_nets[0])
    wire(module, "metal2", (gate_trunk_b, min(gate_b_ties)),
         (gate_trunk_b, y_port), width=m2w, net=gate_nets[1])
    _drain_port(
        module, tech, drain_nets[0], drain_trunk_a, min(drain_a_ties),
        obstacle_y=min(gate_a_ties), y_port=y_port,
        m2w=m2w, m2s=m2s, plate=plate,
    )
    _drain_port(
        module, tech, drain_nets[1], drain_trunk_b, min(drain_b_ties),
        obstacle_y=min(gate_b_ties), y_port=y_port,
        m2w=m2w, m2s=m2s, plate=plate,
    )


def _gate_rows(module: LayoutObject) -> List[Rect]:
    """All gate-row metals: metal1 rects sitting on same-net poly rows.

    Gate contact rows are the only structures whose metal1 overlaps poly of
    the same net; diffusion columns overlap pdiff instead.
    """
    polys = module.rects_on("poly")
    rows: List[Rect] = []
    for rect in module.rects_on("metal1"):
        if rect.net is None:
            continue
        for poly in polys:
            if poly.net == rect.net and rect.intersects(poly) and poly.contains(rect):
                rows.append(rect)
                break
    return rows


def _rows_of_net(
    module: LayoutObject, net: str, upper: bool, mid: int
) -> List[Rect]:
    rows = [
        r for r in _gate_rows(module)
        if r.net == net and (((r.y1 + r.y2) // 2 > mid) == upper)
    ]
    rows.sort(key=lambda r: r.x1)
    return rows


def _tie_gate_net(
    module: LayoutObject,
    tech: Technology,
    net: str,
    trunk_x: int,
    direct: bool,
    stub_bands: Tuple[int, int],
    mid: int,
    plate: int,
    m2w: int,
) -> List[int]:
    """Tie all gate rows of *net* (both device rows) to one vertical trunk.

    ``direct=True``: vias land on the row metal itself (net A), plus a
    *dummy* stub of the same length net B's functional stubs have — so the
    two nets' metal loads match (the classic dummy-fill matching trick).
    ``direct=False``: a short metal1 stub lifts each row to its half's stub
    band first (net B) — same via count, so crossings stay identical.
    """
    tie_ys: List[int] = []
    for upper in (True, False):
        rows = _rows_of_net(module, net, upper, mid)
        if not rows:
            continue
        stub_y = stub_bands[0] if upper else stub_bands[1]
        y = (rows[0].y1 + rows[0].y2) // 2 if direct else stub_y
        for row in rows:
            cx = (row.x1 + row.x2) // 2
            cy = (row.y1 + row.y2) // 2
            if stub_y != cy:
                # Functional stub (stub mode) or capacitance-matching dummy
                # stub (direct mode) — either way the same metal length.
                # Starting at the row centre keeps the merged shape legal.
                wire(module, "metal1", (cx, cy), (cx, stub_y), net=net)
            via_stack(module, cx, y, "metal1", "metal2", net=net)
        far = max(r.x2 for r in rows) if trunk_x < rows[0].x1 else min(r.x1 for r in rows)
        wire(module, "metal2", (trunk_x, y), (far, y), width=m2w, net=net)
        tie_ys.append(y)
    if len(tie_ys) == 2:
        wire(module, "metal2", (trunk_x, tie_ys[0]), (trunk_x, tie_ys[1]),
             width=m2w, net=net)
    return tie_ys


def _seam_offset(module: LayoutObject) -> int:
    """Vertical centre of the module (the mirror seam), in dbu."""
    box = module.bbox()
    assert box is not None
    return box.y1 + box.y2


def _drain_band(
    module: LayoutObject, drain_nets: Tuple[str, str]
) -> Tuple[int, int]:
    """Common y-range of all drain column metals."""
    columns = [
        r for r in module.rects_on("metal1")
        if r.net in drain_nets and r.height > r.width
    ]
    if not columns:
        return (0, 0)
    return (max(r.y1 for r in columns), min(r.y2 for r in columns))


def _tie_drain_net(
    module: LayoutObject,
    tech: Technology,
    net: str,
    trunk_x: int,
    fractions: Tuple[float, float],
    m2w: int,
    plate: int,
    clamp: Tuple[int, int],
    mid: int,
) -> List[int]:
    """Bridge all drain columns of *net* per device row; join with a trunk.

    ``fractions`` positions the bridge within the (upper, lower) column
    bands; ``clamp`` bounds the via-plate centres — (maximum y in the upper
    half, minimum y in the lower half) — keeping plates clear of the gate
    rows and gate ties.
    """
    columns = [
        r for r in module.rects_on("metal1")
        if r.net == net and r.height > r.width
    ]
    if not columns:
        return []
    upper_cols = [c for c in columns if (c.y1 + c.y2) // 2 > mid]
    lower_cols = [c for c in columns if (c.y1 + c.y2) // 2 <= mid]
    tie_ys: List[int] = []
    for cols, upper, fraction in (
        (upper_cols, True, fractions[0]),
        (lower_cols, False, fractions[1]),
    ):
        if not cols:
            continue
        c_lo = max(c.y1 for c in cols)
        c_hi = min(c.y2 for c in cols)
        y = c_lo + int((c_hi - c_lo) * fraction)
        if upper:
            y = min(y, clamp[0])
            y = max(y, c_lo + plate // 2)
        else:
            y = max(y, clamp[1])
            y = min(y, c_hi - plate // 2)
        for column in cols:
            via_stack(module, (column.x1 + column.x2) // 2, y,
                      "metal1", "metal2", net=net)
        far = (
            max(c.x2 for c in cols)
            if trunk_x < min(c.x1 for c in cols)
            else min(c.x1 for c in cols)
        )
        wire(module, "metal2", (trunk_x, y), (far, y), width=m2w, net=net)
        tie_ys.append(y)
    if len(tie_ys) == 2:
        wire(module, "metal2", (trunk_x, tie_ys[0]), (trunk_x, tie_ys[1]),
             width=m2w, net=net)
    return tie_ys


def _drain_port(
    module: LayoutObject,
    tech: Technology,
    net: str,
    x: int,
    start_y: int,
    obstacle_y: int,
    y_port: int,
    m2w: int,
    m2s: int,
    plate: int,
) -> None:
    """Bring a drain net down to the port row, ducking under the gate tie.

    The gate tie (metal2, centred at *obstacle_y*) crosses the port column;
    the drain wire switches to metal1 for the short stretch across it and
    returns to metal2 below.
    """
    y_hi = obstacle_y + m2w // 2 + m2s + plate // 2
    y_lo = obstacle_y - m2w // 2 - m2s - plate // 2
    wire(module, "metal2", (x, start_y), (x, y_hi), width=m2w, net=net)
    via_stack(module, x, y_hi, "metal1", "metal2", net=net)
    wire(module, "metal1", (x, y_hi), (x, y_lo), net=net)
    via_stack(module, x, y_lo, "metal1", "metal2", net=net)
    wire(module, "metal2", (x, y_lo), (x, y_port), width=m2w, net=net)


def _tie_vss(
    module: LayoutObject,
    tech: Technology,
    net: str,
    rails: Tuple[int, int],
    mid: int,
    x_west: int,
    x_east: int,
    m1w: int,
) -> None:
    """Connect dummy gate rows and the seam strap with a perimeter loop."""
    strap_rects = [
        r for r in module.rects_on("metal1")
        if r.net == net
        and r.width > 4 * r.height
        and abs((r.y1 + r.y2) // 2 - mid) < r.height * 4
    ]
    for upper, y in ((True, rails[0]), (False, rails[1])):
        rows = _rows_of_net(module, net, upper, mid)
        rows = [r for r in rows if r.width <= 4 * r.height]
        if not rows:
            continue
        for row in rows:
            cx = (row.x1 + row.x2) // 2
            wire(module, "metal1", (cx, (row.y1 + row.y2) // 2), (cx, y), net=net)
        wire(module, "metal1", (x_west, y), (x_east, y), width=m1w, net=net)
    # Perimeter verticals joining both rails and the seam strap.
    strap_y = (
        (strap_rects[0].y1 + strap_rects[0].y2) // 2 if strap_rects else mid
    )
    for x in (x_west, x_east):
        wire(module, "metal1", (x, rails[1]), (x, rails[0]), width=m1w, net=net)
    # Stubs from the verticals to the seam strap.
    if strap_rects:
        strap = strap_rects[0]
        wire(module, "metal1", (x_west, strap_y), (strap.x1, strap_y),
             width=m1w, net=net)
        wire(module, "metal1", (strap.x2, strap_y), (x_east, strap_y),
             width=m1w, net=net)


def _split_rows(rects: List[Rect]) -> List[List[Rect]]:
    """Split rects into the upper and lower device row by y centre."""
    if not rects:
        return []
    mid = (min(r.y1 for r in rects) + max(r.y2 for r in rects)) // 2
    upper = [r for r in rects if (r.y1 + r.y2) // 2 >= mid]
    lower = [r for r in rects if (r.y1 + r.y2) // 2 < mid]
    return [upper, lower]

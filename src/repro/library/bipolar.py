"""Bipolar transistor modules (block F).

"The bipolar transistors of block F are composed symmetrically."  An npn
device is built inside-out with the same primitives as the MOS modules:
emitter contact row, base ring region, buried collector — each enclosure
taken from the technology file.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..compact import Compactor
from ..db import LayoutObject
from ..geometry import Direction
from ..primitives import around, array, inbox
from ..tech import Technology
from .contact_row import contact_row
from ..obs.provenance import provenance_entity


@provenance_entity("NpnTransistor")
def npn_transistor(
    tech: Technology,
    emitter_w: float = 2.0,
    emitter_l: float = 4.0,
    emitter_net: str = "e",
    base_net: str = "b",
    collector_net: str = "c",
    compactor: Optional[Compactor] = None,
    name: str = "NPN",
) -> LayoutObject:
    """A vertical npn: emitter inside base inside buried collector.

    The emitter is a contacted stripe; the base region is placed AROUND it
    per the base-enclose-emitter rule with its own contact row compacted to
    the west; the buried layer wraps everything with its collector contact
    row to the east.
    """
    if compactor is None:
        compactor = Compactor()
    device = LayoutObject(name, tech)

    # Emitter: stripe + metal + contacts (a contact row on the emitter layer).
    emitter = LayoutObject(f"{name}_em", tech)
    inbox(emitter, "emitter", w=tech.um(emitter_w), length=tech.um(emitter_l),
          net=emitter_net)
    inbox(emitter, "metal1", net=emitter_net, variable=True)
    array(emitter, "contact", net=emitter_net)
    compactor.compact(device, emitter, Direction.SOUTH)

    # Base region around the emitter, plus its contact row.
    around(device, "base", net=base_net)
    base_row = contact_row(tech, "base", w=emitter_w, net=base_net,
                           name=f"{name}_bc")
    compactor.compact(device, base_row, Direction.EAST, ignore_layers=("base",))

    # Buried collector wraps base; collector contact row to the east.
    around(device, "buried", net=collector_net)
    collector_row = contact_row(tech, "emitter", w=emitter_w, net=collector_net,
                                name=f"{name}_cc")
    compactor.compact(device, collector_row, Direction.WEST,
                      ignore_layers=("buried",))
    return device


@provenance_entity("SymmetricNpnPair")
def symmetric_npn_pair(
    tech: Technology,
    emitter_w: float = 2.0,
    emitter_l: float = 4.0,
    nets_left: Tuple[str, str, str] = ("e1", "b1", "c1"),
    nets_right: Tuple[str, str, str] = ("e2", "b2", "c2"),
    compactor: Optional[Compactor] = None,
    name: str = "NPNPair",
) -> LayoutObject:
    """Two npn devices composed symmetrically (mirror images).

    The right device is the exact mirror of the left one, so the pair
    matches under linear gradients — the paper's "composed symmetrically".
    """
    if compactor is None:
        compactor = Compactor()
    left = npn_transistor(
        tech, emitter_w, emitter_l, *nets_left, compactor=compactor,
        name=f"{name}_l",
    )
    right = npn_transistor(
        tech, emitter_w, emitter_l, *nets_right, compactor=compactor,
        name=f"{name}_r",
    )
    right.mirror_y(axis_x=0)

    pair = LayoutObject(name, tech)
    compactor.compact(pair, left, Direction.WEST)
    compactor.compact(pair, right, Direction.WEST)
    return pair

"""The module library written in the PLDL itself.

"Due to its easy use, analog designers can construct and maintain their
modules themselves" (Sec. 4) — these sources are what such designers would
keep in their library: each is plain PLDL, exercising hierarchy, loops,
conditionals, rule queries and backtracking, and each runs unchanged on any
technology file.

Every constant below is a self-contained program defining one entity (plus
the shared ``ContactRow``); load them with
:meth:`repro.core.Environment.load` or :class:`repro.lang.Interpreter`.
"""

from .contact_row import CONTACT_ROW_SOURCE
from .diff_pair import DIFF_PAIR_SOURCE

#: A single MOS transistor with gate row and both diffusion columns.
TRANSISTOR_SOURCE = CONTACT_ROW_SOURCE + """
ENT Transistor(<W>, <L>)
  TWORECTS("poly", "pdiff", W, L, gatenet = "g")
  gate = ContactRow(layer = "poly", L = L)
  SETNET(gate, "g")
  drain = ContactRow(layer = "pdiff", W = W)
  SETNET(drain, "d")
  source = ContactRow(layer = "pdiff", W = W)
  SETNET(source, "s")
  compact(gate, SOUTH)
  compact(drain, WEST, "pdiff")
  compact(source, EAST, "pdiff")
END
"""

#: A simple two-device current mirror (diode-connected reference).
CURRENT_MIRROR_SOURCE = CONTACT_ROW_SOURCE + """
ENT MirrorHalf(<W>, <L>, <DNET>)
  TWORECTS("poly", "pdiff", W, L, gatenet = "iref")
  gate = ContactRow(layer = "poly", L = L)
  SETNET(gate, "iref")
  drain = ContactRow(layer = "pdiff", W = W)
  SETNET(drain, DNET)
  compact(gate, SOUTH)
  compact(drain, EAST, "pdiff")
END

ENT Mirror(<W>, <L>)
  ref = MirrorHalf(W = W, L = L, DNET = "iref")
  out = MirrorHalf(W = W, L = L, DNET = "iout")
  MIRRORY(out, 0)
  tail = ContactRow(layer = "pdiff", W = W)
  SETNET(tail, "vss")
  compact(ref, WEST, "pdiff")
  compact(tail, WEST, "pdiff")
  compact(out, WEST, "pdiff")
END
"""

#: An interdigitated transistor built with a FOR loop and MOD parity.
INTERDIGITATED_SOURCE = CONTACT_ROW_SOURCE + """
ENT Finger(<W>, <L>, <LNET>, <RNET>)
  TWORECTS("poly", "pdiff", W, L, gatenet = "g")
  gate = ContactRow(layer = "poly", L = L)
  SETNET(gate, "g")
  right = ContactRow(layer = "pdiff", W = W)
  SETNET(right, RNET)
  left = ContactRow(layer = "pdiff", W = W)
  SETNET(left, LNET)
  compact(gate, SOUTH)
  compact(right, WEST, "pdiff")
  compact(left, EAST, "pdiff")
END

ENT Interdigitated(<W>, <L>, <N>)
  FOR i = 0 TO N - 1
    IF MOD(i, 2) == 0
      f = Finger(W = W, L = L, LNET = "s", RNET = "d")
    ELSE
      f = Finger(W = W, L = L, LNET = "d", RNET = "s")
    ENDIF
    compact(f, WEST, "pdiff")
  ENDFOR
END
"""

#: A serpentine poly resistor: loops, MOD parity, and rule queries — the
#: pitch comes straight from the technology's SPACE rule.
RESISTOR_SOURCE = """
ENT Serpentine(<W>, <LSEG>, <NSEG>)
  pitch = W + SPACERULE("poly", "poly")
  FOR i = 0 TO NSEG - 1
    WIRE("poly", 0, i * pitch, LSEG, i * pitch, W, net = "body")
    IF i < NSEG - 1
      IF MOD(i, 2) == 0
        WIRE("poly", LSEG, i * pitch, LSEG, i * pitch + pitch, W, net = "body")
      ELSE
        WIRE("poly", 0, i * pitch, 0, i * pitch + pitch, W, net = "body")
      ENDIF
    ENDIF
  ENDFOR
  ADAPTOR("poly", "metal1", 0, 0, W, W, net = "body")
  IF MOD(NSEG, 2) == 1
    ADAPTOR("poly", "metal1", LSEG, (NSEG - 1) * pitch, W, W, net = "body")
  ELSE
    ADAPTOR("poly", "metal1", 0, (NSEG - 1) * pitch, W, W, net = "body")
  ENDIF
END
"""

#: A guarded transistor: the device, then a contacted substrate ring —
#: with a backtracking choice between a tight and a relaxed ring gap.
GUARDED_TRANSISTOR_SOURCE = TRANSISTOR_SOURCE + """
ENT GuardedTransistor(<W>, <L>)
  t = Transistor(W = W, L = L)
  compact(t, WEST)
  ALT
    RING("subcontact", net = "sub")
  ELSEALT
    RING("subcontact", 4, 6, net = "sub")
  ENDALT
END
"""

#: Every named source, for enumeration in tests and docs.
DSL_LIBRARY = {
    "ContactRow": CONTACT_ROW_SOURCE,
    "DiffPair": DIFF_PAIR_SOURCE,
    "Transistor": TRANSISTOR_SOURCE,
    "Mirror": CURRENT_MIRROR_SOURCE,
    "Interdigitated": INTERDIGITATED_SOURCE,
    "Serpentine": RESISTOR_SOURCE,
    "GuardedTransistor": GUARDED_TRANSISTOR_SOURCE,
}

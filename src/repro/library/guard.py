"""Guard rings and substrate-contact rings.

"The internal wiring and the substrate or well contacts are included into
the modules" (Sec. 3).  A substrate ring both collects majority carriers and
satisfies the latch-up rule of Fig. 1: ring geometry is placed with the RING
primitive and contacted along all four sides.
"""

from __future__ import annotations

from typing import List, Optional

from ..compact import Compactor
from ..db import ArrayLink, LayoutObject
from ..geometry import Rect
from ..primitives import ring
from ..tech import Technology
from ..obs.provenance import provenance_entity


@provenance_entity("SubstrateRing")
def substrate_ring(
    obj: LayoutObject,
    net: str = "sub",
    layer: str = "subcontact",
    width: Optional[float] = None,
    contacted: bool = True,
) -> List[Rect]:
    """Surround *obj* with a substrate-contact ring (optionally metallised).

    The ring is drawn on the substrate-contact diffusion with metal1 over it
    and contact arrays along every side; returns the ring's diffusion rects.
    Afterwards the latch-up check usually passes for module-sized layouts
    (the temporary rectangles of the ring contacts cover the inner area).
    """
    tech = obj.tech
    enc_metal = tech.enclosure_or_zero("metal1", "contact")
    enc_diff = tech.enclosure_or_zero(layer, "contact")
    cut = tech.cut_size("contact")
    space = tech.min_space("contact", "contact") or cut
    if width is not None:
        ring_width = tech.um(width)
    else:
        # Wide enough to hold its contact row.
        ring_width = max(
            tech.min_width(layer), cut + 2 * max(enc_metal, enc_diff)
        )
    diff_rects = ring(obj, layer, width=ring_width, net=net)
    if not contacted:
        return diff_rects
    for side in diff_rects:
        metal = side.copy()
        metal.layer = "metal1"
        metal.net = net
        obj.add_rect(metal)
        margin = max(enc_metal, enc_diff)
        link = ArrayLink(
            "contact", cut, space,
            [(side, margin), (metal, margin)], net,
        )
        link.rebuild()
        if link.rects:
            link.stamp_provenance()
            for rect in link.rects:
                obj.rects.append(rect)
            obj.add_link(link)
    return diff_rects


@provenance_entity("GuardRing")
def guard_ring(
    obj: LayoutObject,
    net: str = "guard",
    layer: str = "nwell",
    width: Optional[float] = None,
) -> List[Rect]:
    """A plain (uncontacted) guard ring on *layer* around the structure."""
    tech = obj.tech
    ring_width = None if width is None else tech.um(width)
    return ring(obj, layer, width=ring_width, net=net)

"""Cross-coupled interdigitated device pairs (block C).

"For the current sources of block C high symmetry and matching requirements
exist.  Thus a cross-coupled arrangement of inter-digital transistors is
selected."  Two matched devices A and B are split into fingers arranged
palindromically (one-dimensional common centroid), so linear process
gradients affect both devices equally.

Wiring is planar by construction: device A contacts its gates on the north
side and device B on the south side, so each gate net gets a same-layer rail
on its own side; the split drain columns are bridged on metal2 at two
disjoint height bands.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..compact import Compactor
from ..db import LayoutObject
from ..geometry import Rect
from ..route import via_stack, wire
from ..tech import Technology
from .interdigitated import DeviceNets, patterned_row, via_landing_um
from ..obs.provenance import provenance_entity


@provenance_entity("CrossCoupledPair")
def cross_coupled_pair(
    tech: Technology,
    w: float,
    length: float,
    gate_nets: Tuple[str, str] = ("gA", "gB"),
    drain_nets: Tuple[str, str] = ("dA", "dB"),
    source_net: str = "vss",
    fingers_per_device: int = 2,
    wiring: bool = True,
    compactor: Optional[Compactor] = None,
    name: str = "CrossCoupled",
) -> LayoutObject:
    """Cross-coupled pair with palindromic finger pattern (e.g. ABBA)."""
    if fingers_per_device < 1:
        raise ValueError("fingers_per_device must be >= 1")
    if compactor is None:
        compactor = Compactor()
    pattern = _centroid_pattern(fingers_per_device)

    devices = {
        "A": DeviceNets(gate=gate_nets[0], drain=drain_nets[0], gate_side="north"),
        "B": DeviceNets(gate=gate_nets[1], drain=drain_nets[1], gate_side="south"),
    }
    landing = via_landing_um(tech)
    pair = patterned_row(
        tech, w, length, pattern, devices,
        source_net=source_net, compactor=compactor, name=name,
        col_metal_min=landing,
        gate_row_length=max(length, landing),
        gate_row_width=landing,
        gate_row_variable=False,
    )
    if wiring:
        _tie_gate_rail(pair, tech, gate_nets[0], north=True)
        _tie_gate_rail(pair, tech, gate_nets[1], north=False)
        column_band = _drain_column_band(pair, drain_nets)
        for fraction, net in zip((0.25, 0.75), drain_nets):
            _tie_columns_metal2(pair, tech, net, column_band, fraction)
    return pair


def _centroid_pattern(half: int) -> str:
    """A B…B A pattern with *half* fingers per device (e.g. 2 → ABBA)."""
    return "A" * (half // 2 + half % 2) + "B" * half + "A" * (half // 2)


def _tie_gate_rail(
    obj: LayoutObject, tech: Technology, net: str, north: bool
) -> None:
    """Join same-net gate rows with a metal2 tie riding over the row band.

    Running on metal2 (vias land on the via-ready row metals) keeps the
    metal1 plane between the rows clear, so the diffusion columns can later
    escape vertically — a metal1 rail would wall them in.
    """
    rows = [
        r for r in obj.rects_on("metal1")
        if r.net == net and ((r.y1 + r.y2) > 0) == north
        and any(
            p.net == net and p.contains(r)
            for p in obj.rects_on("poly")
        )
    ]
    if len(rows) < 2:
        return
    y = (rows[0].y1 + rows[0].y2) // 2
    for row in rows:
        via_stack(obj, (row.x1 + row.x2) // 2, y, "metal1", "metal2", net=net)
    wire(
        obj, "metal2",
        (min(r.x1 for r in rows), y),
        (max(r.x2 for r in rows), y),
        width=tech.min_width("metal2"),
        net=net,
    )


def _drain_column_band(
    obj: LayoutObject, drain_nets: Tuple[str, str]
) -> Tuple[int, int]:
    """Common y-range of the drain column metals (the bridging zone)."""
    columns = [
        r for r in obj.rects_on("metal1")
        if r.net in drain_nets and r.height > r.width
    ]
    if not columns:
        return (0, 0)
    return (max(r.y1 for r in columns), min(r.y2 for r in columns))


def _tie_columns_metal2(
    obj: LayoutObject,
    tech: Technology,
    net: str,
    band: Tuple[int, int],
    fraction: float,
) -> None:
    """Bridge same-net drain columns with a metal2 wire plus via stacks.

    ``fraction`` places the bridge inside the shared column band so the two
    nets' bridges run at disjoint heights.
    """
    columns = [
        r for r in obj.rects_on("metal1") if r.net == net and r.height > r.width
    ]
    if len(columns) < 2:
        return
    columns.sort(key=lambda r: r.x1)
    lo, hi = band
    y = lo + int((hi - lo) * fraction)
    for column in columns:
        via_stack(obj, (column.x1 + column.x2) // 2, y, "metal1", "metal2", net=net)
    wire(
        obj, "metal2",
        ((columns[0].x1 + columns[0].x2) // 2, y),
        ((columns[-1].x1 + columns[-1].x2) // 2, y),
        net=net,
    )

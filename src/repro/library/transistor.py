"""Single MOS transistor modules with internal contacts.

A vertical-gate device: the poly bar runs north-south, source/drain
diffusion columns sit west/east, the gate contact row lands on the north
endcap — the compaction flow of the paper's ``Trans`` entity (Fig. 7).
"""

from __future__ import annotations

from typing import Optional

from ..compact import Compactor
from ..db import LayoutObject
from ..geometry import Direction, Rect
from ..primitives import tworects
from ..route import wire
from ..tech import Technology
from .contact_row import contact_row
from ..obs.provenance import provenance_entity


@provenance_entity("MosTransistor")
def mos_transistor(
    tech: Technology,
    w: float,
    length: float,
    gate_net: str = "g",
    source_net: str = "s",
    drain_net: str = "d",
    body_layer: str = "pdiff",
    gate_contact: bool = True,
    source_contact: bool = True,
    drain_contact: bool = True,
    gate_side: str = "north",
    col_metal_min: Optional[float] = None,
    compactor: Optional[Compactor] = None,
    name: str = "MOS",
) -> LayoutObject:
    """Build one MOS transistor with its internal contact rows.

    ``w``/``length`` are channel width and length in microns.  The source
    column compacts onto the west side, the drain column onto the east side
    and the gate row onto the ``gate_side`` endcap ("north" or "south"); the
    body diffusion merges with the contact columns ("connected automatically
    ... on the same potential").
    """
    if compactor is None:
        compactor = Compactor()
    if gate_side not in ("north", "south"):
        raise ValueError("gate_side must be 'north' or 'south'")
    obj = LayoutObject(name, tech)

    core = LayoutObject(f"{name}_core", tech)
    tworects(
        core,
        "poly",
        body_layer,
        tech.um(w),
        tech.um(length),
        gate_net=gate_net,
        body_net=None,
    )
    compactor.compact(obj, core, Direction.SOUTH)

    if gate_contact:
        gate_row = contact_row(
            tech, "poly", length=length, net=gate_net, name=f"{name}_gc"
        )
        gate_dir = Direction.SOUTH if gate_side == "north" else Direction.NORTH
        # No ignore list needed: the row's poly and the gate poly share the
        # gate net, so the same-potential rule lets them merge while the
        # poly-to-active spacing keeps the row clear of the diffusion.
        compactor.compact(obj, gate_row, gate_dir)
    col_height = None if col_metal_min is None else w
    if drain_contact:
        drain_col = contact_row(
            tech, body_layer, w=w, net=drain_net, name=f"{name}_dc",
            metal_min_width=col_metal_min, metal_min_height=col_height,
        )
        compactor.compact(obj, drain_col, Direction.WEST, ignore_layers=(body_layer,))
    if source_contact:
        source_col = contact_row(
            tech, body_layer, w=w, net=source_net, name=f"{name}_sc",
            metal_min_width=col_metal_min, metal_min_height=col_height,
        )
        compactor.compact(obj, source_col, Direction.EAST, ignore_layers=(body_layer,))
    return obj


@provenance_entity("DiodeTransistor")
def diode_transistor(
    tech: Technology,
    w: float,
    length: float,
    anode_net: str = "bias",
    source_net: str = "vss",
    body_layer: str = "pdiff",
    compactor: Optional[Compactor] = None,
    name: str = "DiodeMOS",
) -> LayoutObject:
    """Diode-connected transistor: gate strapped to its drain in metal1.

    One of the few module types the paper lists as recurring in analog
    circuits; the strap runs from the gate contact row down the drain side.
    """
    obj = mos_transistor(
        tech,
        w,
        length,
        gate_net=anode_net,
        source_net=source_net,
        drain_net=anode_net,
        body_layer=body_layer,
        compactor=compactor,
        name=name,
    )
    gate_metal = _net_rects_on(obj, anode_net, "metal1", above=True)
    drain_metal = _net_rects_on(obj, anode_net, "metal1", above=False)
    if gate_metal and drain_metal:
        gx = (gate_metal.x1 + gate_metal.x2) // 2
        gy = (gate_metal.y1 + gate_metal.y2) // 2
        dx_ = (drain_metal.x1 + drain_metal.x2) // 2
        dy = (drain_metal.y1 + drain_metal.y2) // 2
        width = tech.min_width("metal1")
        # Jog east along the gate row, then drop down the drain column — the
        # route stays on anode-net geometry, clear of the source column.
        if gx != dx_:
            wire(obj, "metal1", (gx, gy), (dx_, gy), width=width, net=anode_net)
        wire(obj, "metal1", (dx_, gy), (dx_, dy), width=width, net=anode_net)
    return obj


@provenance_entity("StackedTransistor")
def stacked_transistor(
    tech: Technology,
    w: float,
    length: float,
    gates: int = 2,
    gate_nets: Optional[list] = None,
    source_net: str = "s",
    drain_net: str = "d",
    body_layer: str = "pdiff",
    compactor: Optional[Compactor] = None,
    name: str = "Stacked",
) -> LayoutObject:
    """Series-stacked transistor: gates share diffusion with no contacts between.

    One of the module types the paper lists explicitly ("stacked
    transistors"): the internal source/drain nodes are uncontacted diffusion
    — minimum parasitic capacitance on the internal nodes, exactly why
    analog designers stack cascodes this way.  Contacts exist only at the
    outer source and drain.
    """
    if gates < 1:
        raise ValueError("a stack needs at least one gate")
    if gate_nets is None:
        gate_nets = [f"g{i + 1}" for i in range(gates)]
    if len(gate_nets) != gates:
        raise ValueError("gate_nets must match the gate count")
    if compactor is None:
        compactor = Compactor()

    stack = LayoutObject(name, tech)
    for index, gate_net in enumerate(gate_nets):
        piece = LayoutObject(f"{name}_g{index}", tech)
        tworects(
            piece, "poly", body_layer, tech.um(w), tech.um(length),
            gate_net=gate_net,
        )
        gate_row = contact_row(
            tech, "poly", length=length, net=gate_net, name=f"{name}_gr{index}"
        )
        compactor.compact(piece, gate_row, Direction.SOUTH)
        # Adjacent gates share diffusion directly — "pdiff" is not relevant,
        # and the poly-poly spacing rule sets the stack pitch.
        compactor.compact(stack, piece, Direction.WEST, ignore_layers=(body_layer,))

    source_col = contact_row(tech, body_layer, w=w, net=source_net,
                             name=f"{name}_s")
    compactor.compact(stack, source_col, Direction.EAST, ignore_layers=(body_layer,))
    drain_col = contact_row(tech, body_layer, w=w, net=drain_net,
                            name=f"{name}_d")
    compactor.compact(stack, drain_col, Direction.WEST, ignore_layers=(body_layer,))
    return stack


def _net_rects_on(
    obj: LayoutObject, net: str, layer: str, above: bool
) -> Optional[Rect]:
    rects = [r for r in obj.rects_on(layer) if r.net == net]
    if not rects:
        return None
    return max(rects, key=lambda r: r.y1) if above else min(rects, key=lambda r: r.y1)

"""Module library: the analog module types the paper's environment targets.

"Only a few different module types (e.g. different current mirrors,
differential pairs, stacked transistors, diode connected transistors) are
required in analog circuits" — this package provides each of them, plus the
complex matched structures of the amplifier example (interdigitated rows,
cross-coupled pairs, the module-E common-centroid pair, symmetric bipolar
modules, guard rings).
"""

from .bipolar import npn_transistor, symmetric_npn_pair
from .centroid_pair import HALF_PATTERN, centroid_cross_coupled_pair
from .contact_row import CONTACT_ROW_SOURCE, contact_row
from .cross_coupled import cross_coupled_pair
from .current_mirror import cascode_pair, simple_current_mirror, symmetric_current_mirror
from .diff_pair import DIFF_PAIR_SOURCE, diff_pair
from .dsl_sources import DSL_LIBRARY
from .guard import guard_ring, substrate_ring
from .interdigitated import (
    DeviceNets,
    finger,
    interdigitated_transistor,
    patterned_row,
    strap_net,
    via_landing_um,
)
from .passives import capacitor_value, mos_capacitor, poly_resistor, resistor_value
from .transistor import diode_transistor, mos_transistor, stacked_transistor


class CellSpec:
    """One golden-regression cell: a deterministic builder plus its needs.

    ``requires`` names the technology layers the builder depends on; a
    technology lacking any of them skips the cell (e.g. bipolar modules on
    a plain CMOS process).
    """

    __slots__ = ("name", "build", "requires")

    def __init__(self, name, build, requires=()):
        self.name = name
        self.build = build
        self.requires = tuple(requires)

    def supported(self, tech) -> bool:
        """True when *tech* provides every layer the cell needs."""
        return all(tech.has_layer(layer) for layer in self.requires)


def _guarded_transistor(tech):
    device = mos_transistor(tech, w=6.0, length=1.0, name="GuardedMOS")
    substrate_ring(device)
    return device


#: Every library cell the golden-cell regression fingerprints, with fixed
#: parameters so CIF/GDS output is reproducible across sessions.
GOLDEN_CELLS = tuple(
    CellSpec(name, build, requires)
    for name, build, requires in (
        ("contact_row_poly",
         lambda tech: contact_row(tech, "poly", w=2.0, length=12.0, net="g"), ()),
        ("contact_row_pdiff",
         lambda tech: contact_row(tech, "pdiff", w=6.0, net="s"), ()),
        ("mos_transistor",
         lambda tech: mos_transistor(tech, w=8.0, length=1.0), ()),
        ("diode_transistor",
         lambda tech: diode_transistor(tech, w=6.0, length=1.0), ()),
        ("stacked_transistor",
         lambda tech: stacked_transistor(tech, w=6.0, length=1.0, gates=3), ()),
        ("diff_pair",
         lambda tech: diff_pair(tech, w=10.0, length=1.0), ()),
        ("simple_current_mirror",
         lambda tech: simple_current_mirror(tech, w=8.0, length=2.0), ()),
        ("symmetric_current_mirror",
         lambda tech: symmetric_current_mirror(tech, w=8.0, length=2.0), ()),
        ("cascode_pair",
         lambda tech: cascode_pair(tech, w=8.0, length=1.0), ()),
        ("cross_coupled_pair",
         lambda tech: cross_coupled_pair(tech, w=8.0, length=1.0), ()),
        ("interdigitated_transistor",
         lambda tech: interdigitated_transistor(tech, w=12.0, length=1.0, fingers=4),
         ()),
        ("centroid_cross_coupled_pair",
         lambda tech: centroid_cross_coupled_pair(tech, w=10.0, length=1.0), ()),
        ("poly_resistor",
         lambda tech: poly_resistor(tech), ()),
        ("mos_capacitor",
         lambda tech: mos_capacitor(tech, width=16.0, length=16.0), ()),
        ("guarded_transistor", _guarded_transistor, ()),
        ("npn_transistor",
         lambda tech: npn_transistor(tech), ("emitter", "base", "buried")),
        ("symmetric_npn_pair",
         lambda tech: symmetric_npn_pair(tech), ("emitter", "base", "buried")),
    )
)


__all__ = [
    "CellSpec",
    "GOLDEN_CELLS",
    "npn_transistor",
    "symmetric_npn_pair",
    "HALF_PATTERN",
    "centroid_cross_coupled_pair",
    "CONTACT_ROW_SOURCE",
    "contact_row",
    "cross_coupled_pair",
    "cascode_pair",
    "simple_current_mirror",
    "symmetric_current_mirror",
    "DIFF_PAIR_SOURCE",
    "DSL_LIBRARY",
    "diff_pair",
    "guard_ring",
    "substrate_ring",
    "capacitor_value",
    "mos_capacitor",
    "poly_resistor",
    "resistor_value",
    "via_landing_um",
    "DeviceNets",
    "finger",
    "interdigitated_transistor",
    "patterned_row",
    "strap_net",
    "diode_transistor",
    "mos_transistor",
    "stacked_transistor",
]

"""Module library: the analog module types the paper's environment targets.

"Only a few different module types (e.g. different current mirrors,
differential pairs, stacked transistors, diode connected transistors) are
required in analog circuits" — this package provides each of them, plus the
complex matched structures of the amplifier example (interdigitated rows,
cross-coupled pairs, the module-E common-centroid pair, symmetric bipolar
modules, guard rings).
"""

from .bipolar import npn_transistor, symmetric_npn_pair
from .centroid_pair import HALF_PATTERN, centroid_cross_coupled_pair
from .contact_row import CONTACT_ROW_SOURCE, contact_row
from .cross_coupled import cross_coupled_pair
from .current_mirror import cascode_pair, simple_current_mirror, symmetric_current_mirror
from .diff_pair import DIFF_PAIR_SOURCE, diff_pair
from .dsl_sources import DSL_LIBRARY
from .guard import guard_ring, substrate_ring
from .interdigitated import (
    DeviceNets,
    finger,
    interdigitated_transistor,
    patterned_row,
    strap_net,
    via_landing_um,
)
from .passives import capacitor_value, mos_capacitor, poly_resistor, resistor_value
from .transistor import diode_transistor, mos_transistor, stacked_transistor

__all__ = [
    "npn_transistor",
    "symmetric_npn_pair",
    "HALF_PATTERN",
    "centroid_cross_coupled_pair",
    "CONTACT_ROW_SOURCE",
    "contact_row",
    "cross_coupled_pair",
    "cascode_pair",
    "simple_current_mirror",
    "symmetric_current_mirror",
    "DIFF_PAIR_SOURCE",
    "DSL_LIBRARY",
    "diff_pair",
    "guard_ring",
    "substrate_ring",
    "capacitor_value",
    "mos_capacitor",
    "poly_resistor",
    "resistor_value",
    "via_landing_um",
    "DeviceNets",
    "finger",
    "interdigitated_transistor",
    "patterned_row",
    "strap_net",
    "diode_transistor",
    "mos_transistor",
    "stacked_transistor",
]

"""``python -m repro`` — the command-line interface."""

import os
import sys

from .cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # `repro perf log | head` — downstream closed the pipe.  Re-point
        # stdout at devnull so interpreter-shutdown flushing stays quiet,
        # and exit with the conventional 128+SIGPIPE status.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)

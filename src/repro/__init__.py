"""repro — reproduction of "A Novel Analog Module Generator Environment".

(M. Wolf, U. Kleine, B. J. Hosticka — DATE 1996.)

A procedural analog layout module generator: a layout description language
with design-rule-driven primitives, a successive compactor with variable-edge
optimization, compaction-order/variant optimization, internal routing, a
module library, and the paper's BiCMOS amplifier example.

Public entry points:

* :class:`repro.Environment` — technology + language + compactor + DRC.
* :class:`repro.DesignSession` — the two-window (source/graphics) session.
* :mod:`repro.library` — ready-made analog module generators.
* :mod:`repro.amplifier` — the broad-band BiCMOS amplifier of Sec. 3.
"""

from .core import DesignSession, Environment
from .db import LayoutObject
from .geometry import EAST, NORTH, SOUTH, WEST, Direction, Rect
from .tech import Technology, generic_bicmos_1u, generic_cmos_05u, get_technology

__version__ = "1.0.0"

__all__ = [
    "DesignSession",
    "Environment",
    "LayoutObject",
    "Direction",
    "NORTH",
    "SOUTH",
    "EAST",
    "WEST",
    "Rect",
    "Technology",
    "generic_bicmos_1u",
    "generic_cmos_05u",
    "get_technology",
    "__version__",
]

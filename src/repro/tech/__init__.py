"""Technology subsystem: layers, design rules, technology files."""

from .builtin import BUILTIN_TECHNOLOGIES, generic_bicmos_1u, generic_cmos_05u, get_technology
from .fileformat import TechFileError, dump_tech, dumps_tech, load_tech, loads_tech
from .layer import FILL_PATTERNS, Layer, LayerKind
from .rules import CapacitanceRule, RuleError, RuleSet
from .technology import Technology

__all__ = [
    "BUILTIN_TECHNOLOGIES",
    "generic_bicmos_1u",
    "generic_cmos_05u",
    "get_technology",
    "TechFileError",
    "dump_tech",
    "dumps_tech",
    "load_tech",
    "loads_tech",
    "FILL_PATTERNS",
    "Layer",
    "LayerKind",
    "CapacitanceRule",
    "RuleError",
    "RuleSet",
    "Technology",
]

"""Layer definitions for a technology.

A layer couples a mask name with its GDSII stream number, a functional kind
(used by primitives and DRC to decide which rules apply), and a fill pattern
tag used by the SVG renderer to reproduce the paper's Fig. 4 legend.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class LayerKind(enum.Enum):
    """Functional classification of a mask layer."""

    DIFFUSION = "diffusion"  # active areas (pdiff / ndiff / locos)
    POLY = "poly"
    METAL = "metal"
    CUT = "cut"  # contacts and vias
    WELL = "well"
    IMPLANT = "implant"
    BIPOLAR = "bipolar"  # buried layer, emitter, base poly
    MARKER = "marker"  # non-mask helper layers


#: SVG fill-pattern tags understood by :mod:`repro.io.svg` (Fig. 4).
FILL_PATTERNS = (
    "solid",
    "hatch-left",
    "hatch-right",
    "cross-hatch",
    "dots",
    "horizontal",
    "vertical",
    "dense-dots",
)


@dataclass(frozen=True)
class Layer:
    """A single mask layer.

    ``conducting`` layers carry nets and participate in the electrical model;
    marker layers never do.
    """

    name: str
    gds_number: int
    kind: LayerKind
    fill_pattern: str = "solid"
    color: str = "#888888"
    gds_datatype: int = 0

    def __post_init__(self) -> None:
        if self.fill_pattern not in FILL_PATTERNS:
            raise ValueError(
                f"layer {self.name!r}: unknown fill pattern {self.fill_pattern!r};"
                f" choose one of {FILL_PATTERNS}"
            )

    @property
    def conducting(self) -> bool:
        """True for layers that carry electrical potentials."""
        return self.kind in (
            LayerKind.DIFFUSION,
            LayerKind.POLY,
            LayerKind.METAL,
            LayerKind.CUT,
            LayerKind.BIPOLAR,
        )

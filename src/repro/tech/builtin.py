"""Built-in technologies.

``generic_bicmos_1u`` substitutes for the paper's proprietary 1 µm Siemens
BiCMOS process: layer names follow the paper (poly, pdiff, metal1, contact,
locos, substrate contacts, bipolar layers) and rule values are plausible
public 1 µm-generation numbers.  Absolute areas therefore differ from the
paper's 592 × 481 µm², but every algorithm exercises identical code paths.

``generic_cmos_05u`` is a second, scaled technology used by tests to prove
that module source is technology independent.
"""

from __future__ import annotations

from .layer import Layer, LayerKind
from .technology import Technology


def generic_bicmos_1u() -> Technology:
    """A generic 1 µm BiCMOS technology (paper-substitute)."""
    tech = Technology("generic_bicmos_1u", dbu_per_micron=1000)

    add = tech.add_layer
    add(Layer("nwell", 1, LayerKind.WELL, "horizontal", "#d9c67a"))
    add(Layer("locos", 2, LayerKind.DIFFUSION, "dots", "#9cc79c"))
    add(Layer("pdiff", 3, LayerKind.DIFFUSION, "hatch-left", "#cc8844"))
    add(Layer("ndiff", 4, LayerKind.DIFFUSION, "hatch-right", "#44aa66"))
    add(Layer("poly", 10, LayerKind.POLY, "hatch-right", "#cc2222"))
    add(Layer("contact", 40, LayerKind.CUT, "cross-hatch", "#222222"))
    add(Layer("metal1", 30, LayerKind.METAL, "solid", "#5577dd"))
    add(Layer("via", 41, LayerKind.CUT, "dense-dots", "#333355"))
    add(Layer("metal2", 31, LayerKind.METAL, "vertical", "#9955cc"))
    add(Layer("subcontact", 5, LayerKind.DIFFUSION, "cross-hatch", "#886644"))
    add(Layer("buried", 20, LayerKind.BIPOLAR, "horizontal", "#777777"))
    add(Layer("base", 21, LayerKind.BIPOLAR, "hatch-left", "#bb7799"))
    add(Layer("emitter", 22, LayerKind.BIPOLAR, "dots", "#dd5555"))

    tech.add_connection("contact", "poly", "metal1")
    tech.add_connection("contact", "pdiff", "metal1")
    tech.add_connection("contact", "ndiff", "metal1")
    tech.add_connection("contact", "subcontact", "metal1")
    tech.add_connection("contact", "base", "metal1")
    tech.add_connection("contact", "emitter", "metal1")
    tech.add_connection("via", "metal1", "metal2")
    # The n+ collector sinker (drawn on the emitter layer) diffuses into the
    # buried layer: their overlap is an electrical junction.
    tech.add_overlap_connection("emitter", "buried")

    # -- widths ---------------------------------------------------------
    tech.rule_width("poly", 1.0)
    tech.rule_width("pdiff", 2.0)
    tech.rule_width("ndiff", 2.0)
    tech.rule_width("subcontact", 2.0)
    tech.rule_width("metal1", 1.5)
    tech.rule_width("metal2", 2.0)
    tech.rule_width("nwell", 4.0)
    tech.rule_width("locos", 2.0)
    tech.rule_width("buried", 4.0)
    tech.rule_width("base", 3.0)
    tech.rule_width("emitter", 2.0)
    tech.rule_cut_size("contact", 1.0)
    tech.rule_cut_size("via", 1.2)
    # cut layers still need a WIDTH for generic drawing checks
    tech.rule_width("contact", 1.0)
    tech.rule_width("via", 1.2)

    # -- spacings --------------------------------------------------------
    tech.rule_space("poly", "poly", 1.2)
    tech.rule_space("pdiff", "pdiff", 2.5)
    tech.rule_space("ndiff", "ndiff", 2.5)
    tech.rule_space("pdiff", "ndiff", 3.0)
    tech.rule_space("metal1", "metal1", 1.5)
    tech.rule_space("metal2", "metal2", 2.0)
    tech.rule_space("contact", "contact", 1.2)
    tech.rule_space("via", "via", 1.5)
    tech.rule_space("poly", "pdiff", 0.8)
    tech.rule_space("poly", "ndiff", 0.8)
    tech.rule_space("poly", "contact", 0.8)
    tech.rule_space("contact", "pdiff", 0.8)
    tech.rule_space("contact", "ndiff", 0.8)
    tech.rule_space("nwell", "nwell", 6.0)
    tech.rule_space("nwell", "ndiff", 3.0)
    tech.rule_space("subcontact", "pdiff", 2.5)
    tech.rule_space("subcontact", "ndiff", 2.5)
    tech.rule_space("subcontact", "subcontact", 2.5)
    tech.rule_space("buried", "buried", 5.0)
    tech.rule_space("base", "base", 3.0)
    tech.rule_space("emitter", "emitter", 3.0)
    tech.rule_space("emitter", "base", 0.0)

    # -- enclosures (INBOX/ARRAY drivers) ---------------------------------
    tech.rule_enclose("poly", "contact", 0.8)
    tech.rule_enclose("pdiff", "contact", 1.0)
    tech.rule_enclose("ndiff", "contact", 1.0)
    tech.rule_enclose("subcontact", "contact", 1.0)
    tech.rule_enclose("base", "contact", 1.0)
    tech.rule_enclose("emitter", "contact", 0.8)
    tech.rule_enclose("metal1", "contact", 0.5)
    tech.rule_enclose("metal1", "via", 0.8)
    tech.rule_enclose("metal2", "via", 0.8)
    tech.rule_enclose("metal1", "poly", 0.0)
    tech.rule_enclose("metal1", "pdiff", 0.0)
    tech.rule_enclose("metal1", "ndiff", 0.0)
    tech.rule_enclose("metal1", "subcontact", 0.0)
    tech.rule_enclose("nwell", "pdiff", 2.5)
    tech.rule_enclose("locos", "pdiff", 0.0)
    tech.rule_enclose("locos", "ndiff", 0.0)
    tech.rule_enclose("base", "emitter", 1.0)
    tech.rule_enclose("buried", "base", 2.0)

    # -- extensions --------------------------------------------------------
    tech.rule_extend("poly", "pdiff", 1.0)  # gate endcap
    tech.rule_extend("poly", "ndiff", 1.0)
    tech.rule_extend("pdiff", "poly", 2.5)  # source/drain past gate
    tech.rule_extend("ndiff", "poly", 2.5)

    # -- areas -------------------------------------------------------------
    tech.rule_area("metal1", 4.0)
    tech.rule_area("metal2", 6.0)

    # -- latch-up (Fig. 1) ---------------------------------------------------
    tech.rule_latchup("subcontact", 50.0)

    # -- capacitance model (aF/µm², aF/µm) ------------------------------------
    um2 = tech.dbu_per_micron ** 2
    um = tech.dbu_per_micron
    tech.rules.set_capacitance("poly", 60.0 / um2, 50.0 / um)
    tech.rules.set_capacitance("pdiff", 250.0 / um2, 300.0 / um)
    tech.rules.set_capacitance("ndiff", 180.0 / um2, 250.0 / um)
    tech.rules.set_capacitance("metal1", 30.0 / um2, 40.0 / um)
    tech.rules.set_capacitance("metal2", 20.0 / um2, 30.0 / um)
    tech.rules.set_capacitance("base", 400.0 / um2, 350.0 / um)
    tech.rules.set_capacitance("emitter", 500.0 / um2, 400.0 / um)

    # -- sheet resistance (Ω/□) — "poly-wire resistance" matters (Sec. 3) ----
    tech.rules.set_sheet("poly", 25.0)
    tech.rules.set_sheet("pdiff", 60.0)
    tech.rules.set_sheet("ndiff", 40.0)
    tech.rules.set_sheet("metal1", 0.06)
    tech.rules.set_sheet("metal2", 0.04)
    return tech


def generic_cmos_05u() -> Technology:
    """A half-micron generic CMOS technology (scaled variant for tests)."""
    tech = Technology("generic_cmos_05u", dbu_per_micron=1000)

    add = tech.add_layer
    add(Layer("nwell", 1, LayerKind.WELL, "horizontal", "#d9c67a"))
    add(Layer("locos", 2, LayerKind.DIFFUSION, "dots", "#9cc79c"))
    add(Layer("pdiff", 3, LayerKind.DIFFUSION, "hatch-left", "#cc8844"))
    add(Layer("ndiff", 4, LayerKind.DIFFUSION, "hatch-right", "#44aa66"))
    add(Layer("poly", 10, LayerKind.POLY, "hatch-right", "#cc2222"))
    add(Layer("contact", 40, LayerKind.CUT, "cross-hatch", "#222222"))
    add(Layer("metal1", 30, LayerKind.METAL, "solid", "#5577dd"))
    add(Layer("via", 41, LayerKind.CUT, "dense-dots", "#333355"))
    add(Layer("metal2", 31, LayerKind.METAL, "vertical", "#9955cc"))
    add(Layer("subcontact", 5, LayerKind.DIFFUSION, "cross-hatch", "#886644"))

    tech.add_connection("contact", "poly", "metal1")
    tech.add_connection("contact", "pdiff", "metal1")
    tech.add_connection("contact", "ndiff", "metal1")
    tech.add_connection("contact", "subcontact", "metal1")
    tech.add_connection("via", "metal1", "metal2")

    tech.rule_width("poly", 0.5)
    tech.rule_width("pdiff", 1.0)
    tech.rule_width("ndiff", 1.0)
    tech.rule_width("subcontact", 1.0)
    tech.rule_width("metal1", 0.8)
    tech.rule_width("metal2", 1.0)
    tech.rule_width("nwell", 2.0)
    tech.rule_width("locos", 1.0)
    tech.rule_width("contact", 0.5)
    tech.rule_width("via", 0.6)
    tech.rule_cut_size("contact", 0.5)
    tech.rule_cut_size("via", 0.6)

    tech.rule_space("poly", "poly", 0.6)
    tech.rule_space("pdiff", "pdiff", 1.2)
    tech.rule_space("ndiff", "ndiff", 1.2)
    tech.rule_space("pdiff", "ndiff", 1.6)
    tech.rule_space("metal1", "metal1", 0.8)
    tech.rule_space("metal2", "metal2", 1.0)
    tech.rule_space("contact", "contact", 0.6)
    tech.rule_space("via", "via", 0.8)
    tech.rule_space("poly", "pdiff", 0.4)
    tech.rule_space("poly", "ndiff", 0.4)
    tech.rule_space("poly", "contact", 0.4)
    tech.rule_space("contact", "pdiff", 0.4)
    tech.rule_space("contact", "ndiff", 0.4)
    tech.rule_space("subcontact", "pdiff", 1.2)
    tech.rule_space("subcontact", "ndiff", 1.2)
    tech.rule_space("subcontact", "subcontact", 1.2)
    tech.rule_space("nwell", "nwell", 3.0)
    tech.rule_space("nwell", "ndiff", 1.5)

    tech.rule_enclose("poly", "contact", 0.4)
    tech.rule_enclose("pdiff", "contact", 0.5)
    tech.rule_enclose("ndiff", "contact", 0.5)
    tech.rule_enclose("subcontact", "contact", 0.5)
    tech.rule_enclose("metal1", "contact", 0.3)
    tech.rule_enclose("metal1", "via", 0.4)
    tech.rule_enclose("metal2", "via", 0.4)
    tech.rule_enclose("metal1", "poly", 0.0)
    tech.rule_enclose("metal1", "pdiff", 0.0)
    tech.rule_enclose("metal1", "ndiff", 0.0)
    tech.rule_enclose("metal1", "subcontact", 0.0)
    tech.rule_enclose("nwell", "pdiff", 1.2)
    tech.rule_enclose("locos", "pdiff", 0.0)
    tech.rule_enclose("locos", "ndiff", 0.0)

    tech.rule_extend("poly", "pdiff", 0.5)
    tech.rule_extend("poly", "ndiff", 0.5)
    tech.rule_extend("pdiff", "poly", 1.2)
    tech.rule_extend("ndiff", "poly", 1.2)

    tech.rule_area("metal1", 1.0)
    tech.rule_area("metal2", 1.5)
    tech.rule_latchup("subcontact", 25.0)

    um2 = tech.dbu_per_micron ** 2
    um = tech.dbu_per_micron
    tech.rules.set_capacitance("poly", 90.0 / um2, 60.0 / um)
    tech.rules.set_capacitance("pdiff", 400.0 / um2, 350.0 / um)
    tech.rules.set_capacitance("ndiff", 300.0 / um2, 300.0 / um)
    tech.rules.set_capacitance("metal1", 35.0 / um2, 45.0 / um)
    tech.rules.set_capacitance("metal2", 25.0 / um2, 35.0 / um)

    tech.rules.set_sheet("poly", 8.0)   # silicided
    tech.rules.set_sheet("pdiff", 90.0)
    tech.rules.set_sheet("ndiff", 70.0)
    tech.rules.set_sheet("metal1", 0.08)
    tech.rules.set_sheet("metal2", 0.05)
    return tech


#: Registry of built-in technologies by name.
BUILTIN_TECHNOLOGIES = {
    "generic_bicmos_1u": generic_bicmos_1u,
    "generic_cmos_05u": generic_cmos_05u,
}


def get_technology(name: str) -> Technology:
    """Instantiate a built-in technology by name."""
    try:
        factory = BUILTIN_TECHNOLOGIES[name]
    except KeyError:
        known = ", ".join(sorted(BUILTIN_TECHNOLOGIES))
        raise ValueError(f"unknown technology {name!r}; built-ins: {known}") from None
    return factory()

"""The Technology object: layers + rules + connectivity + units.

Primitives and the compactor never hard-code a dimension; everything is
looked up here, which is what makes module source technology independent.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .layer import Layer, LayerKind
from .rules import CapacitanceRule, RuleError, RuleSet

#: Distinguishes "not cached yet" from a cached ``None`` (= unconstrained).
_MISSING = object()


class Technology:
    """A process technology: named layers, design rules, connectivity.

    ``dbu_per_micron`` fixes the database grid; rule values supplied through
    the micron-based helpers are snapped to integers on that grid.
    """

    def __init__(self, name: str, dbu_per_micron: int = 1000) -> None:
        if dbu_per_micron <= 0:
            raise ValueError("dbu_per_micron must be positive")
        self.name = name
        self.dbu_per_micron = int(dbu_per_micron)
        self.rules = RuleSet()
        self._layers: Dict[str, Layer] = {}
        # cut layer -> (bottom conducting layer(s), top layer)
        self._connections: List[Tuple[str, str, str]] = []
        # layer pairs whose overlap is a diffused junction (e.g. an n+
        # sinker into a buried collector): overlap = electrical connection.
        self._overlap_connections: List[Tuple[str, str]] = []
        # Memoized min_space/connectable answers.  The compactor's inner pair
        # loop asks the same layer-pair questions millions of times during an
        # order sweep; the cache is keyed on the rule-table version and the
        # connection count so late registration invalidates it automatically.
        self._query_cache: Dict[Tuple, object] = {}
        self._query_stamp: Tuple[int, int] = (-1, -1)

    def _queries(self) -> Dict[Tuple, object]:
        stamp = (self.rules.version, len(self._connections))
        if stamp != self._query_stamp:
            self._query_cache.clear()
            self._query_stamp = stamp
        return self._query_cache

    def query_cache(self) -> Dict[Tuple, object]:
        """The version-stamped memo table for derived rule queries.

        Callers computing pure functions of the rule tables (the compactor's
        layer-pair profiles, for instance) may park results here under their
        own key tuples; the table clears itself whenever the rules or the
        connectivity declarations change.
        """
        return self._queries()

    # ------------------------------------------------------------------
    # units
    # ------------------------------------------------------------------
    def um(self, microns: float) -> int:
        """Convert microns to database units (rounded to the grid)."""
        return int(round(microns * self.dbu_per_micron))

    def to_um(self, dbu: float) -> float:
        """Convert database units back to microns."""
        return dbu / self.dbu_per_micron

    # ------------------------------------------------------------------
    # layers
    # ------------------------------------------------------------------
    def add_layer(self, layer: Layer) -> Layer:
        """Register a layer; duplicate names are an error."""
        if layer.name in self._layers:
            raise ValueError(f"layer {layer.name!r} already defined")
        self._layers[layer.name] = layer
        return layer

    def layer(self, name: str) -> Layer:
        """Look up a layer by name; unknown names raise ``RuleError``."""
        try:
            return self._layers[name]
        except KeyError:
            raise RuleError(
                f"layer {name!r} is not defined in technology {self.name!r}"
            ) from None

    def has_layer(self, name: str) -> bool:
        """True when *name* is a known layer."""
        return name in self._layers

    @property
    def layers(self) -> List[Layer]:
        """All layers in registration order."""
        return list(self._layers.values())

    def layers_of_kind(self, kind: LayerKind) -> List[Layer]:
        """All layers of the given functional kind."""
        return [layer for layer in self._layers.values() if layer.kind is kind]

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def add_connection(self, cut_layer: str, bottom: str, top: str) -> None:
        """Declare that *cut_layer* connects *bottom* to *top* electrically."""
        for name in (cut_layer, bottom, top):
            self.layer(name)  # validates existence
        self._connections.append((cut_layer, bottom, top))

    def add_overlap_connection(self, layer_a: str, layer_b: str) -> None:
        """Declare that overlapping shapes of the two layers connect.

        Models diffused junctions (sinker into buried layer); consumed by
        the connectivity extractor.
        """
        self.layer(layer_a)
        self.layer(layer_b)
        self._overlap_connections.append((layer_a, layer_b))

    def overlap_connected(self, layer_a: str, layer_b: str) -> bool:
        """True when overlap of the two layers is a declared junction."""
        return (layer_a, layer_b) in self._overlap_connections or (
            layer_b,
            layer_a,
        ) in self._overlap_connections

    def overlap_connections(self) -> List[Tuple[str, str]]:
        """All declared diffused-junction layer pairs, in declaration order.

        The indexed connectivity extractor sweeps exactly these pairs
        instead of asking :meth:`overlap_connected` for every rect pair.
        """
        return list(self._overlap_connections)

    def connected_layers(self, cut_layer: str) -> List[Tuple[str, str]]:
        """(bottom, top) pairs a cut layer connects."""
        return [(b, t) for (c, b, t) in self._connections if c == cut_layer]

    def cut_between(self, layer_a: str, layer_b: str) -> Optional[str]:
        """The cut layer connecting two conducting layers, or None."""
        for cut, bottom, top in self._connections:
            if {bottom, top} == {layer_a, layer_b}:
                return cut
        return None

    def connectable(self, layer_a: str, layer_b: str) -> bool:
        """True when same-net shapes on the two layers may merge by abutment.

        Holds for equal layers and for layer pairs a declared cut joins.
        Deliberately NOT true for a cut layer against its plate layer: the
        contact-to-gate spacing rule applies regardless of potential, so the
        compactor must keep enforcing it (a same-net contact still may not
        sit 0.5 µm from a gate edge).
        """
        if layer_a == layer_b:
            return True
        cache = self._queries()
        key = ("connectable", layer_a, layer_b)
        cached = cache.get(key)
        if cached is None:
            cached = self.cut_between(layer_a, layer_b) is not None
            cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # mandatory-rule accessors (raise when the rule is missing)
    # ------------------------------------------------------------------
    def min_width(self, layer: str) -> int:
        """Minimum width; mandatory for any layer geometry is drawn on."""
        self.layer(layer)
        value = self.rules.width(layer)
        if value is None:
            raise RuleError(f"no WIDTH rule for layer {layer!r} in {self.name!r}")
        return value

    def min_space(self, layer_a: str, layer_b: str) -> Optional[int]:
        """Minimum spacing between two layers; None when unconstrained."""
        cache = self._queries()
        key = ("space", layer_a, layer_b)
        cached = cache.get(key, _MISSING)
        if cached is _MISSING:
            cached = self.rules.space(layer_a, layer_b)
            cache[key] = cached
        return cached

    def space_rules(self) -> Tuple[Tuple[str, str, int], ...]:
        """Every SPACE rule as (layer_a, layer_b, value), memoized.

        Pairs are canonical and unique (``layer_a <= layer_b``), in
        registration order.  The sweep-indexed DRC checker enumerates these
        instead of asking :meth:`min_space` for all layer pairs.
        """
        cache = self._queries()
        key = ("space_rules",)
        cached = cache.get(key)
        if cached is None:
            cached = tuple(
                (pair[0], pair[1], value)
                for pair, value in self.rules.space_items()
            )
            cache[key] = cached
        return cached

    def max_space_radius(self) -> int:
        """The largest SPACE rule value of the technology, memoized (0 when
        no spacing rules exist).

        An upper bound on how far apart two shapes can be and still violate
        any spacing rule — the dilation radius sweep indexes use to bound
        their candidate windows.
        """
        cache = self._queries()
        key = ("max_space_radius",)
        cached = cache.get(key)
        if cached is None:
            cached = max(
                (value for _, _, value in self.space_rules()), default=0
            )
            cache[key] = cached
        return cached

    def enclosure(self, outer: str, inner: str) -> int:
        """Mandatory enclosure of *inner* by *outer*."""
        value = self.rules.enclose(outer, inner)
        if value is None:
            raise RuleError(
                f"no ENCLOSE rule for {outer!r} around {inner!r} in {self.name!r}"
            )
        return value

    def enclosure_or_zero(self, outer: str, inner: str) -> int:
        """Enclosure value, defaulting to 0 when no rule exists."""
        value = self.rules.enclose(outer, inner)
        return 0 if value is None else value

    def extension(self, layer: str, over: str) -> int:
        """Mandatory extension of *layer* past *over* (e.g. gate endcap)."""
        value = self.rules.extend(layer, over)
        if value is None:
            raise RuleError(
                f"no EXTEND rule for {layer!r} over {over!r} in {self.name!r}"
            )
        return value

    def cut_size(self, layer: str) -> int:
        """Mandatory fixed size of a cut layer."""
        value = self.rules.cut_size(layer)
        if value is None:
            raise RuleError(f"no CUTSIZE rule for layer {layer!r} in {self.name!r}")
        return value

    def latchup_half_size(self, contact_layer: str) -> int:
        """Mandatory latch-up temporary-rectangle half size."""
        value = self.rules.latchup(contact_layer)
        if value is None:
            raise RuleError(
                f"no LATCHUP rule for layer {contact_layer!r} in {self.name!r}"
            )
        return value

    def capacitance(self, layer: str) -> CapacitanceRule:
        """Capacitance model, defaulting to zero when unspecified."""
        model = self.rules.capacitance(layer)
        return model if model is not None else CapacitanceRule(0.0, 0.0)

    def sheet_rho(self, layer: str) -> float:
        """Sheet resistance (Ω/□), defaulting to zero when unspecified.

        The paper's partitioning considers "poly-wire resistance"; the
        estimators in :mod:`repro.db.nets` use this value.
        """
        rho = self.rules.sheet(layer)
        return rho if rho is not None else 0.0

    # ------------------------------------------------------------------
    # micron-based rule registration sugar (used by builtin technologies)
    # ------------------------------------------------------------------
    def rule_width(self, layer: str, microns: float) -> None:
        """Register a WIDTH rule given in microns."""
        self.rules.set_width(layer, self.um(microns))

    def rule_space(self, layer_a: str, layer_b: str, microns: float) -> None:
        """Register a SPACE rule given in microns."""
        self.rules.set_space(layer_a, layer_b, self.um(microns))

    def rule_enclose(self, outer: str, inner: str, microns: float) -> None:
        """Register an ENCLOSE rule given in microns."""
        self.rules.set_enclose(outer, inner, self.um(microns))

    def rule_extend(self, layer: str, over: str, microns: float) -> None:
        """Register an EXTEND rule given in microns."""
        self.rules.set_extend(layer, over, self.um(microns))

    def rule_cut_size(self, layer: str, microns: float) -> None:
        """Register a CUTSIZE rule given in microns."""
        self.rules.set_cut_size(layer, self.um(microns))

    def rule_area(self, layer: str, square_microns: float) -> None:
        """Register an AREA rule given in µm²."""
        self.rules.set_area(layer, int(round(square_microns * self.dbu_per_micron ** 2)))

    def rule_latchup(self, contact_layer: str, microns: float) -> None:
        """Register a LATCHUP rule given in microns."""
        self.rules.set_latchup(contact_layer, self.um(microns))

    def __repr__(self) -> str:
        return f"Technology({self.name!r}, layers={len(self._layers)})"

"""Text format for technology description files.

"The design rules are stored in a technology description file" (Sec. 1).
The format is line-based; distances are given in microns and converted to
database units via the file's ``UNITS`` declaration::

    # comment
    TECH generic_bicmos_1u
    UNITS 1000                        # database units per micron
    LAYER poly 10 poly hatch-right #cc2222
    LAYER contact 40 cut cross-hatch #222222
    CONNECT contact poly metal1       # cut layer joins bottom to top
    RULE WIDTH poly 1.0
    RULE SPACE poly poly 1.2
    RULE ENCLOSE metal1 contact 0.5
    RULE EXTEND poly pdiff 1.0
    RULE CUTSIZE contact 1.0
    RULE AREA metal1 4.0
    RULE LATCHUP subcontact 50.0
    RULE CAP poly 60 50               # aF/µm² area, aF/µm perimeter
    RULE SHEET poly 25                # Ω per square
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from .layer import Layer, LayerKind
from .technology import Technology


class TechFileError(Exception):
    """Malformed technology description file."""


def loads_tech(text: str) -> Technology:
    """Parse a technology from its text representation."""
    tech: Technology = None  # type: ignore[assignment]
    dbu = 1000
    pending: List[tuple] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0].upper()
        try:
            if keyword == "TECH":
                tech = Technology(tokens[1], dbu_per_micron=dbu)
            elif keyword == "UNITS":
                dbu = int(tokens[1])
                if tech is not None:
                    tech.dbu_per_micron = dbu
            elif keyword == "LAYER":
                _require(tech, keyword, lineno)
                name, gds, kind = tokens[1], int(tokens[2]), tokens[3]
                pattern = tokens[4] if len(tokens) > 4 else "solid"
                color = tokens[5] if len(tokens) > 5 else "#888888"
                tech.add_layer(Layer(name, gds, LayerKind(kind), pattern, color))
            elif keyword == "CONNECT":
                _require(tech, keyword, lineno)
                tech.add_connection(tokens[1], tokens[2], tokens[3])
            elif keyword == "OVERLAP":
                _require(tech, keyword, lineno)
                tech.add_overlap_connection(tokens[1], tokens[2])
            elif keyword == "RULE":
                _require(tech, keyword, lineno)
                _parse_rule(tech, tokens[1:], lineno)
            else:
                raise TechFileError(f"line {lineno}: unknown keyword {keyword!r}")
        except (IndexError, ValueError) as exc:
            raise TechFileError(f"line {lineno}: {raw.strip()!r}: {exc}") from exc

    if tech is None:
        raise TechFileError("file contains no TECH declaration")
    return tech


def _require(tech: Technology, keyword: str, lineno: int) -> None:
    if tech is None:
        raise TechFileError(f"line {lineno}: {keyword} before TECH declaration")


def _parse_rule(tech: Technology, tokens: List[str], lineno: int) -> None:
    kind = tokens[0].upper()
    if kind == "WIDTH":
        tech.rule_width(tokens[1], float(tokens[2]))
    elif kind == "SPACE":
        tech.rule_space(tokens[1], tokens[2], float(tokens[3]))
    elif kind == "ENCLOSE":
        tech.rule_enclose(tokens[1], tokens[2], float(tokens[3]))
    elif kind == "EXTEND":
        tech.rule_extend(tokens[1], tokens[2], float(tokens[3]))
    elif kind == "CUTSIZE":
        tech.rule_cut_size(tokens[1], float(tokens[2]))
    elif kind == "AREA":
        tech.rule_area(tokens[1], float(tokens[2]))
    elif kind == "LATCHUP":
        tech.rule_latchup(tokens[1], float(tokens[2]))
    elif kind == "CAP":
        um2 = tech.dbu_per_micron ** 2
        tech.rules.set_capacitance(
            tokens[1],
            float(tokens[2]) / um2,
            float(tokens[3]) / tech.dbu_per_micron,
        )
    elif kind == "SHEET":
        tech.rules.set_sheet(tokens[1], float(tokens[2]))
    else:
        raise TechFileError(f"line {lineno}: unknown rule kind {kind!r}")


def load_tech(path: Union[str, Path]) -> Technology:
    """Load a technology description file from disk."""
    return loads_tech(Path(path).read_text(encoding="utf-8"))


def dumps_tech(tech: Technology) -> str:
    """Serialise a technology back to the text format (round-trippable)."""
    lines: List[str] = [
        f"# technology description file — {tech.name}",
        f"UNITS {tech.dbu_per_micron}",
        f"TECH {tech.name}",
    ]
    for layer in tech.layers:
        lines.append(
            f"LAYER {layer.name} {layer.gds_number} {layer.kind.value}"
            f" {layer.fill_pattern} {layer.color}"
        )
    for cut, bottom, top in tech._connections:
        lines.append(f"CONNECT {cut} {bottom} {top}")
    for layer_a, layer_b in tech._overlap_connections:
        lines.append(f"OVERLAP {layer_a} {layer_b}")
    dbu = tech.dbu_per_micron
    for kind, payload in tech.rules.iter_rules():
        if kind == "CAP":
            layer, area, perim = payload
            lines.append(f"RULE CAP {layer} {area * dbu ** 2:g} {perim * dbu:g}")
        elif kind == "SHEET":
            layer, rho = payload
            lines.append(f"RULE SHEET {layer} {rho:g}")
        elif kind in ("WIDTH", "CUTSIZE", "LATCHUP"):
            layer, value = payload
            lines.append(f"RULE {kind} {layer} {value / dbu:g}")
        elif kind == "AREA":
            layer, value = payload
            lines.append(f"RULE AREA {layer} {value / dbu ** 2:g}")
        else:  # SPACE / ENCLOSE / EXTEND: two layers + value
            a, b, value = payload
            lines.append(f"RULE {kind} {a} {b} {value / dbu:g}")
    return "\n".join(lines) + "\n"


def dump_tech(tech: Technology, path: Union[str, Path]) -> None:
    """Write a technology description file to disk."""
    Path(path).write_text(dumps_tech(tech), encoding="utf-8")

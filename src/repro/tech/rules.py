"""Design-rule tables.

The environment stores every design rule in the technology description file
(Sec. 1); module source never contains a rule value.  The rule kinds needed by
the paper's primitives and checks are:

========== =====================================================================
WIDTH      minimum width of a shape on a layer
SPACE      minimum spacing between shapes (same layer or a layer pair)
ENCLOSE    minimum enclosure of an inner layer by an outer layer (INBOX/ARRAY)
EXTEND     minimum extension of one layer past another (gate poly endcaps)
CUTSIZE    the fixed square size of a cut layer (contacts, vias)
AREA       minimum area of a shape on a layer
LATCHUP    half-size of the temporary rectangle drawn around a substrate
           contact for the latch-up examination of Fig. 1
CAP        area / perimeter capacitance of a layer (electrical rating)
========== =====================================================================

All distance values are stored in database units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


def _pair(a: str, b: str) -> Tuple[str, str]:
    """Canonical unordered layer pair."""
    return (a, b) if a <= b else (b, a)


@dataclass
class CapacitanceRule:
    """Parasitic capacitance model of a layer.

    ``area`` is in aF per dbu², ``perimeter`` in aF per dbu — only the ratio
    matters to the rating function, so the absolute unit is conventional.
    """

    area: float
    perimeter: float


class RuleSet:
    """All design rules of a technology, queryable by the primitives.

    Lookup methods return ``None`` when no rule constrains the query (the
    compactor then treats the pair as unconstrained) except where a rule is
    mandatory for the requested operation, in which case :class:`RuleError`
    is raised by the caller-facing :class:`repro.tech.Technology` wrappers.
    """

    def __init__(self) -> None:
        self._width: Dict[str, int] = {}
        self._space: Dict[Tuple[str, str], int] = {}
        self._enclose: Dict[Tuple[str, str], int] = {}
        self._extend: Dict[Tuple[str, str], int] = {}
        self._cut_size: Dict[str, int] = {}
        self._area: Dict[str, int] = {}
        self._latchup: Dict[str, int] = {}
        self._cap: Dict[str, CapacitanceRule] = {}
        self._sheet: Dict[str, float] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone counter bumped by every registration.

        Query caches (:class:`repro.tech.Technology` memoizes ``min_space`` /
        ``connectable``) key their validity on this value, so late rule
        registration invalidates them automatically.
        """
        return self._version

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def set_width(self, layer: str, value: int) -> None:
        """Register a minimum width."""
        self._width[layer] = int(value)
        self._version += 1

    def set_space(self, layer_a: str, layer_b: str, value: int) -> None:
        """Register a minimum spacing between two (possibly equal) layers."""
        self._space[_pair(layer_a, layer_b)] = int(value)
        self._version += 1

    def set_enclose(self, outer: str, inner: str, value: int) -> None:
        """Register a minimum enclosure of *inner* by *outer* (ordered)."""
        self._enclose[(outer, inner)] = int(value)
        self._version += 1

    def set_extend(self, layer: str, over: str, value: int) -> None:
        """Register a minimum extension of *layer* past *over* (ordered)."""
        self._extend[(layer, over)] = int(value)
        self._version += 1

    def set_cut_size(self, layer: str, value: int) -> None:
        """Register the fixed square size of a cut layer."""
        self._cut_size[layer] = int(value)
        self._version += 1

    def set_area(self, layer: str, value: int) -> None:
        """Register a minimum area."""
        self._area[layer] = int(value)
        self._version += 1

    def set_latchup(self, contact_layer: str, half_size: int) -> None:
        """Register the latch-up temporary-rectangle half size."""
        self._latchup[contact_layer] = int(half_size)
        self._version += 1

    def set_capacitance(self, layer: str, area: float, perimeter: float) -> None:
        """Register the parasitic capacitance model of a layer."""
        self._cap[layer] = CapacitanceRule(area, perimeter)
        self._version += 1

    def set_sheet(self, layer: str, ohms_per_square: float) -> None:
        """Register the sheet resistance of a layer (Ω/□)."""
        self._sheet[layer] = float(ohms_per_square)
        self._version += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def width(self, layer: str) -> Optional[int]:
        """Minimum width of *layer*, or None."""
        return self._width.get(layer)

    def space(self, layer_a: str, layer_b: str) -> Optional[int]:
        """Minimum spacing between the two layers, or None."""
        return self._space.get(_pair(layer_a, layer_b))

    def enclose(self, outer: str, inner: str) -> Optional[int]:
        """Minimum enclosure of *inner* inside *outer*, or None."""
        return self._enclose.get((outer, inner))

    def extend(self, layer: str, over: str) -> Optional[int]:
        """Minimum extension of *layer* beyond *over*, or None."""
        return self._extend.get((layer, over))

    def cut_size(self, layer: str) -> Optional[int]:
        """Fixed cut size of *layer*, or None."""
        return self._cut_size.get(layer)

    def area(self, layer: str) -> Optional[int]:
        """Minimum area of *layer*, or None."""
        return self._area.get(layer)

    def latchup(self, contact_layer: str) -> Optional[int]:
        """Latch-up half-size for *contact_layer*, or None."""
        return self._latchup.get(contact_layer)

    def capacitance(self, layer: str) -> Optional[CapacitanceRule]:
        """Capacitance model of *layer*, or None."""
        return self._cap.get(layer)

    def sheet(self, layer: str) -> Optional[float]:
        """Sheet resistance of *layer* (Ω/□), or None."""
        return self._sheet.get(layer)

    def space_items(self) -> List[Tuple[Tuple[str, str], int]]:
        """All SPACE rules as ((layer_a, layer_b), value) in registration order.

        The pairs are canonical (``layer_a <= layer_b``); sweep-based
        checkers iterate exactly these pairs instead of probing every layer
        combination through :meth:`space`.
        """
        return list(self._space.items())

    def enclosing_layers(self, inner: str) -> List[str]:
        """All layers registered to enclose *inner* (used by ARRAY/INBOX)."""
        return [outer for (outer, inn) in self._enclose if inn == inner]

    # ------------------------------------------------------------------
    # iteration (file writer / introspection)
    # ------------------------------------------------------------------
    def iter_rules(self) -> Iterable[Tuple[str, tuple]]:
        """Yield (kind, payload) for every registered rule, sorted."""
        for layer, value in sorted(self._width.items()):
            yield ("WIDTH", (layer, value))
        for (a, b), value in sorted(self._space.items()):
            yield ("SPACE", (a, b, value))
        for (outer, inner), value in sorted(self._enclose.items()):
            yield ("ENCLOSE", (outer, inner, value))
        for (layer, over), value in sorted(self._extend.items()):
            yield ("EXTEND", (layer, over, value))
        for layer, value in sorted(self._cut_size.items()):
            yield ("CUTSIZE", (layer, value))
        for layer, value in sorted(self._area.items()):
            yield ("AREA", (layer, value))
        for layer, value in sorted(self._latchup.items()):
            yield ("LATCHUP", (layer, value))
        for layer, cap in sorted(self._cap.items()):
            yield ("CAP", (layer, cap.area, cap.perimeter))
        for layer, rho in sorted(self._sheet.items()):
            yield ("SHEET", (layer, rho))


class RuleError(Exception):
    """A mandatory design rule is missing or cannot be satisfied.

    The paper: "The implemented language interpreter evaluates and fulfills
    the design rules automatically.  If a rule cannot be fulfilled an error
    message occurs."  This exception is that error message.
    """

"""Command-line interface: ``python -m repro <command> ...``.

Turns the environment into a usable tool without writing Python:

==============  ==============================================================
tech list       list built-in technologies
tech dump       write a technology description file
build           run a PLDL entity and emit GDS/SVG, optionally DRC
run             execute a PLDL file's top-level statements
translate       translate PLDL source to Python (the paper's to-C step)
drc             design-rule-check a layout file (GDS or text dump)
render          render a layout file to SVG
session         record the two-window design session as HTML
amplifier       build the Sec. 3 BiCMOS amplifier example
stats           run any command under the tracer, print a profiling summary
verify          golden-cell hashes, PLDL fuzzing, differential compaction
explain         build a cell with provenance on and explain its DRC violations
report          write the self-contained HTML run report for a cell
perf            run-ledger history, diffs and perf-regression checks
==============  ==============================================================

``--trace out.json`` (before the command) records a Chrome trace-event
profile of any command; ``--profile out.folded`` samples wall-clock stacks
into flamegraph/speedscope collapsed-stack output (``--profile-memory``
swaps in the tracemalloc allocation profiler); ``-v``/``-q`` widen or
silence diagnostics, which flow through the ``repro.*`` logging hierarchy.
Every command appends one record (timings, peak RSS, tracer counters) to
the run ledger under ``~/.cache/repro/ledger`` unless ``--no-ledger`` or
``REPRO_LEDGER=0`` opts out; ``repro perf`` reads that history back.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from .core import DesignSession, Environment
from .db import LayoutObject
from .drc import format_report, run_drc
from .io import dumps_object, read_gds, render_svg, write_gds, write_svg
from .io.textdump import load_object
from .obs import (
    ChromeTraceSink,
    ProvenanceRecorder,
    StatsSink,
    Tracer,
    configure_logging,
    get_logger,
    get_tracer,
    set_recorder,
    set_tracer,
)
from .tech import (
    BUILTIN_TECHNOLOGIES,
    Technology,
    dump_tech,
    dumps_tech,
    get_technology,
    load_tech,
)

log = get_logger("cli")


def _resolve_tech(spec: str) -> Technology:
    """A technology name or a path to a technology description file."""
    if spec in BUILTIN_TECHNOLOGIES:
        return get_technology(spec)
    path = Path(spec)
    if path.exists():
        return load_tech(path)
    known = ", ".join(sorted(BUILTIN_TECHNOLOGIES))
    raise SystemExit(
        f"error: unknown technology {spec!r} (built-ins: {known}; or pass a"
        " .tech file path)"
    )


def _parse_params(pairs: List[str]) -> Dict[str, Any]:
    """Parse ``K=V`` entity parameters; numeric values become floats."""
    params: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"error: parameter {pair!r} is not of the form K=V")
        key, value = pair.split("=", 1)
        try:
            params[key] = float(value)
        except ValueError:
            params[key] = value
    return params


def _load_layout(path: str, tech: Technology) -> LayoutObject:
    """Load a layout from a .gds or text-dump file."""
    file_path = Path(path)
    if not file_path.exists():
        raise SystemExit(f"error: no such file {path!r}")
    if file_path.suffix.lower() == ".gds":
        objects = read_gds(file_path, tech)
        if not objects:
            raise SystemExit(f"error: {path!r} contains no structures")
        return objects[0]
    return load_object(file_path, tech)


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------
def cmd_tech(args: argparse.Namespace) -> int:
    if args.action == "list":
        for name in sorted(BUILTIN_TECHNOLOGIES):
            tech = get_technology(name)
            print(f"{name}: {len(tech.layers)} layers, "
                  f"{tech.dbu_per_micron} dbu/µm")
        return 0
    tech = _resolve_tech(args.name)
    if args.output:
        dump_tech(tech, args.output)
        log.info("wrote %s", args.output)
    else:
        print(dumps_tech(tech), end="")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    env = Environment(tech=_resolve_tech(args.tech))
    env.load(Path(args.source).read_text(encoding="utf-8"))
    params = _parse_params(args.param or [])
    module = env.build(args.entity, **params)
    dbu = env.tech.dbu_per_micron
    print(f"{args.entity}: {module.width / dbu:.2f} × {module.height / dbu:.2f} µm, "
          f"{len(module.nonempty_rects)} rects")
    status = 0
    if args.drc:
        violations = env.drc(module)
        print(format_report(violations))
        status = 1 if violations else 0
    if args.gds:
        write_gds(module, args.gds)
        log.info("wrote %s", args.gds)
    if args.cif:
        from .io import write_cif

        write_cif(module, args.cif)
        log.info("wrote %s", args.cif)
    if args.svg:
        write_svg(module, args.svg, scale=args.scale)
        log.info("wrote %s", args.svg)
    if args.dump:
        Path(args.dump).write_text(dumps_object(module), encoding="utf-8")
        log.info("wrote %s", args.dump)
    return status


def cmd_run(args: argparse.Namespace) -> int:
    env = Environment(tech=_resolve_tech(args.tech))
    result = env.run(Path(args.source).read_text(encoding="utf-8"))
    dbu = env.tech.dbu_per_micron
    for name, value in result.items():
        if isinstance(value, LayoutObject):
            print(f"{name}: layout {value.width / dbu:.2f} × "
                  f"{value.height / dbu:.2f} µm ({len(value.nonempty_rects)} rects)")
        else:
            print(f"{name} = {value}")
    return 0


def cmd_translate(args: argparse.Namespace) -> int:
    env = Environment(tech=_resolve_tech(args.tech))
    code = env.translate(Path(args.source).read_text(encoding="utf-8"))
    if args.output:
        Path(args.output).write_text(code, encoding="utf-8")
        log.info("wrote %s", args.output)
    else:
        print(code, end="")
    return 0


def cmd_drc(args: argparse.Namespace) -> int:
    tech = _resolve_tech(args.tech)
    layout = _load_layout(args.layout, tech)
    violations = run_drc(
        layout, include_latchup=not args.no_latchup, use_index=not args.brute
    )
    print(format_report(violations))
    return 1 if violations else 0


def cmd_render(args: argparse.Namespace) -> int:
    tech = _resolve_tech(args.tech)
    layout = _load_layout(args.layout, tech)
    write_svg(layout, args.output, scale=args.scale)
    log.info("wrote %s", args.output)
    return 0


def cmd_session(args: argparse.Namespace) -> int:
    session = DesignSession(tech=_resolve_tech(args.tech))
    session.run(Path(args.source).read_text(encoding="utf-8"))
    session.save_html(args.output)
    log.info("recorded %d snapshots → %s", len(session.snapshots), args.output)
    return 0


def cmd_rc(args: argparse.Namespace) -> int:
    from .db import rc_report

    tech = _resolve_tech(args.tech)
    layout = _load_layout(args.layout, tech)
    report = rc_report(layout.rects, tech)
    if not report:
        print("no labelled nets in the layout")
        return 0
    print(f"{'net':12s} {'R (ohm)':>10s} {'C (fF)':>10s} {'RC (ps)':>10s}")
    for net, (resistance, capacitance, rc_ps) in report.items():
        print(f"{net:12s} {resistance:10.1f} {capacitance / 1000:10.2f}"
              f" {rc_ps:10.4f}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from .verify import (
        fuzz,
        load_golden,
        run_differential,
        update_golden,
        verify_golden,
    )

    tech_names = [args.tech] if args.tech else None
    run_all = args.all or not (
        args.golden or args.fuzz or args.differential or args.update_golden
    )
    report_dir = Path(args.report) if args.report else None
    failures = 0

    if args.update_golden:
        fingerprints = update_golden(tech_names=tech_names)
        cells = sum(len(v) for v in fingerprints.values())
        print(f"recorded {cells} golden hashes across"
              f" {len(fingerprints)} technologies")

    if run_all or args.golden:
        mismatches = verify_golden(tech_names=tech_names)
        checked = sum(len(cells) for cells in load_golden().values())
        if mismatches:
            failures += len(mismatches)
            for mismatch in mismatches:
                print(f"golden FAIL: {mismatch}")
        else:
            print(f"golden: all cell fingerprints match ({checked} recorded)")

    fuzz_tech = _resolve_tech(args.tech or "generic_bicmos_1u")

    fuzz_cases = args.fuzz if args.fuzz else (200 if run_all else 0)
    if fuzz_cases:
        results = fuzz(fuzz_cases, args.seed, fuzz_tech)
        failed = [r for r in results if r.failed]
        graceful = sum(1 for r in results if r.status == "graceful")
        print(f"fuzz: {len(results)} cases, {len(failed)} failing"
              f" ({graceful} gracefully rejected)")
        for result in failed:
            failures += 1
            print(f"fuzz FAIL case {result.case} (seed {result.seed}):"
                  f" {result.status}: {result.detail}")
            if report_dir is not None:
                report_dir.mkdir(parents=True, exist_ok=True)
                out = report_dir / f"fuzz_case_{result.case}.pldl"
                out.write_text(result.source, encoding="utf-8")
                log.info("wrote failing program %s", out)

    diff_trials = args.differential if args.differential else (50 if run_all else 0)
    if diff_trials:
        reports = run_differential(fuzz_tech, trials=diff_trials, seed=args.seed)
        bad = [r for r in reports if not r.ok]
        print(f"differential: {len(reports)} trials, {len(bad)} failing")
        for report in bad:
            failures += 1
            print(f"differential FAIL trial {report.trial}"
                  f" (seed {report.seed}, {report.direction},"
                  f" {report.objects} objects):")
            for problem in report.problems:
                print(f"  {problem}")
            if report_dir is not None:
                from .verify.differential import random_object_set

                report_dir.mkdir(parents=True, exist_ok=True)
                import random as _random

                from .geometry import Direction

                rng = _random.Random(report.seed)
                direction = rng.choice(list(Direction))
                count = rng.randint(2, 4)
                objects = random_object_set(fuzz_tech, rng, count, direction)
                out = report_dir / f"diff_trial_{report.trial}.gds"
                write_gds(objects, out)
                log.info("wrote failing object set %s", out)

    if failures:
        print(f"verify: {failures} failure(s)")
        return 1
    print("verify: OK")
    return 0


def cmd_amplifier(args: argparse.Namespace) -> int:
    from .amplifier import build_amplifier, measure_amplifier

    tech = _resolve_tech(args.tech)
    if not args.no_selfcheck:
        _pipeline_selfcheck(tech, workers=args.workers)
    amp = build_amplifier(tech)
    report = measure_amplifier(amp)
    print(f"amplifier: {report.width_um:.0f} × {report.height_um:.0f} µm = "
          f"{report.area_um2:,.0f} µm², DRC violations: {report.drc_violations}")
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    write_gds(amp, out / "bicmos_amplifier.gds")
    write_svg(amp, out / "bicmos_amplifier.svg", scale=0.004)
    log.info("wrote %s/bicmos_amplifier.gds and .svg", out)
    return 0


def _pipeline_selfcheck(tech: Technology, workers: Optional[int] = None) -> None:
    """Exercise interpreter and order optimizer ahead of the amplifier build.

    The amplifier itself is assembled in Python (compactor + DRC); a traced
    run should show spans from all four instrumented layers, so build the
    library transistor from its PLDL source (interpreter → compactor) and
    sweep a small compaction-order search (optimizer) first.  *workers*
    opts the order search into the process pool — under ``--trace`` that
    exercises cross-process snapshot merging end to end.
    """
    from .geometry import Direction
    from .library import contact_row
    from .library.dsl_sources import TRANSISTOR_SOURCE
    from .opt import Step, TreeOrderOptimizer

    env = Environment(tech=tech)
    env.load(TRANSISTOR_SOURCE)
    transistor = env.build("Transistor", W=4.0, L=1.0)
    log.info(
        "selfcheck: PLDL Transistor %d × %d dbu (%d rects)",
        transistor.width, transistor.height, len(transistor.nonempty_rects),
    )
    steps = [
        Step(contact_row(tech, "pdiff", w=4.0, net="a", name="a"), Direction.WEST),
        Step(contact_row(tech, "pdiff", w=8.0, net="b", name="b"), Direction.SOUTH),
        Step(contact_row(tech, "poly", w=2.0, length=12.0, net="c", name="c"),
             Direction.WEST),
    ]
    result = TreeOrderOptimizer(workers=workers).optimize(
        "order_demo", tech, steps
    )
    log.info(
        "selfcheck: order search best=%s score=%.0f (%d trials)",
        list(result.best_order), result.best_score, result.evaluated,
    )


def _build_cell(name: str, tech: Technology) -> LayoutObject:
    """Build a named cell: the amplifier or any golden-regression cell."""
    if name == "amplifier":
        from .amplifier import build_amplifier

        return build_amplifier(tech)
    from .library import GOLDEN_CELLS

    for cell in GOLDEN_CELLS:
        if cell.name == name:
            if not cell.supported(tech):
                missing = ", ".join(
                    layer for layer in cell.requires if not tech.has_layer(layer)
                )
                raise SystemExit(
                    f"error: cell {name!r} needs layers this technology"
                    f" lacks ({missing})"
                )
            return cell.build(tech)
    known = ", ".join(["amplifier"] + [cell.name for cell in GOLDEN_CELLS])
    raise SystemExit(f"error: unknown cell {name!r} (known cells: {known})")


def cmd_explain(args: argparse.Namespace) -> int:
    from .obs.report import explain_violations

    tech = _resolve_tech(args.tech)
    recorder = ProvenanceRecorder(enabled=True)
    previous = set_recorder(recorder)
    try:
        cell = _build_cell(args.cell, tech)
    finally:
        set_recorder(previous)
    violations = run_drc(cell)
    explanations = explain_violations(cell, violations)
    if args.json:
        import json

        payload = [
            {
                "kind": e.violation.kind,
                "message": e.violation.message,
                "where": list(e.violation.where),
                "rule": e.rule_text,
                "why": e.gloss,
                "suggestion": e.suggestion,
                "latchup_case": e.latchup_case,
                "rects": [
                    {
                        "layer": rect.layer,
                        "net": rect.net,
                        "bbox": [rect.x1, rect.y1, rect.x2, rect.y2],
                        "provenance": chain,
                    }
                    for rect, chain in e.provenances
                ],
            }
            for e in explanations
        ]
        print(json.dumps(payload, indent=2))
    elif not explanations:
        print(f"{cell.name}: DRC clean — nothing to explain")
    else:
        print(f"{cell.name}: {len(explanations)} violation(s)")
        for explanation in explanations:
            print(explanation.format())
    return 1 if violations else 0


def cmd_report(args: argparse.Namespace) -> int:
    from .obs.report import write_report

    tech = _resolve_tech(args.tech)
    recorder = ProvenanceRecorder(enabled=True, capture_stages=False)
    tracer = get_tracer()
    own_tracer = not tracer.enabled
    if own_tracer:
        tracer = Tracer(enabled=True)
    stats_sink = StatsSink()
    tracer.add_sink(stats_sink)
    previous_recorder = set_recorder(recorder)
    previous_tracer = set_tracer(tracer) if own_tracer else None
    try:
        if args.cell == "amplifier":
            # Populates the optimizer trial table; stage capture stays off so
            # the gallery shows only the requested cell's compaction stages.
            _pipeline_selfcheck(tech)
        recorder.capture_stages = True
        cell = _build_cell(args.cell, tech)
    finally:
        if previous_tracer is not None:
            set_tracer(previous_tracer)
        set_recorder(previous_recorder)
        tracer.sinks.remove(stats_sink)
    violations = run_drc(cell)
    out = write_report(
        cell,
        args.output,
        recorder=recorder,
        violations=violations,
        stats_table=stats_sink.format_table(),
    )
    covered = sum(
        1 for rect in cell.nonempty_rects
        if rect.prov is not None and rect.prov.entities
    )
    print(
        f"{cell.name}: report → {out} ({len(recorder.stages)} stages,"
        f" {len(recorder.trials)} trials, {len(violations)} violations,"
        f" provenance on {covered}/{len(cell.nonempty_rects)} rects)"
    )
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    from .obs import regress
    from .obs.ledger import Ledger

    with Ledger(args.ledger) as ledger:
        if args.perf_action == "log":
            print(regress.perf_log(
                ledger, limit=args.limit,
                command=args.filter_command, kind=args.kind,
            ))
            return 0
        if args.perf_action == "show":
            print(regress.perf_show(ledger, args.run))
            return 0
        if args.perf_action == "diff":
            print(regress.perf_diff(
                ledger, args.run_a, args.run_b,
                patterns=args.metric or ("*",),
            ))
            return 0
        if args.perf_action == "baseline":
            print(regress.perf_baseline(
                ledger, args.name, command=args.filter_command, k=args.k,
            ))
            return 0
        status, report = regress.perf_check(
            ledger,
            args.baseline,
            commands=args.filter_command or None,
            k=args.k,
            rel=args.rel,
            mads=args.mads,
            floor=args.floor,
            patterns=args.metric or regress.DEFAULT_TRACKED,
        )
        print(report)
        return status


# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Analog module generator environment (DATE 1996 reproduction)",
    )
    parser.add_argument(
        "--trace", metavar="PATH",
        help="write a Chrome trace-event JSON of the command to PATH"
             " (open in Perfetto or chrome://tracing)",
    )
    parser.add_argument(
        "--profile", metavar="PATH",
        help="sample the command's stacks and write collapsed stacks to"
             " PATH (flamegraph.pl / speedscope format); with --trace the"
             " samples also overlay the span timeline",
    )
    parser.add_argument(
        "--profile-interval", type=float, default=5.0, metavar="MS",
        help="sampling period in milliseconds (default: 5)",
    )
    parser.add_argument(
        "--profile-memory", action="store_true",
        help="profile memory instead of time: tracemalloc allocation"
             " tracebacks weighted in KiB",
    )
    parser.add_argument(
        "--profile-top", type=int, default=15, metavar="N",
        help="rows in the printed top-functions table (default: 15)",
    )
    parser.add_argument(
        "--ledger", metavar="DIR",
        help="run-ledger directory (default: $REPRO_LEDGER_DIR or"
             " ~/.cache/repro/ledger)",
    )
    parser.add_argument(
        "--no-ledger", action="store_true",
        help="do not record this run in the ledger (REPRO_LEDGER=0 does"
             " the same globally)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="more diagnostics (repeatable; -v enables DEBUG logging)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress status diagnostics (warnings and errors only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tech = sub.add_parser("tech", help="list or dump technologies")
    tech.add_argument("action", choices=["list", "dump"])
    tech.add_argument("name", nargs="?", default="generic_bicmos_1u")
    tech.add_argument("-o", "--output")
    tech.set_defaults(func=cmd_tech)

    build = sub.add_parser("build", help="build one entity from a PLDL file")
    build.add_argument("source")
    build.add_argument("entity")
    build.add_argument("-p", "--param", action="append", metavar="K=V")
    build.add_argument("--tech", default="generic_bicmos_1u")
    build.add_argument("--gds")
    build.add_argument("--cif")
    build.add_argument("--svg")
    build.add_argument("--dump")
    build.add_argument("--scale", type=float, default=0.02)
    build.add_argument("--drc", action="store_true")
    build.set_defaults(func=cmd_build)

    run = sub.add_parser("run", help="execute a PLDL file's top level")
    run.add_argument("source")
    run.add_argument("--tech", default="generic_bicmos_1u")
    run.set_defaults(func=cmd_run)

    translate = sub.add_parser("translate", help="translate PLDL to Python")
    translate.add_argument("source")
    translate.add_argument("-o", "--output")
    translate.add_argument("--tech", default="generic_bicmos_1u")
    translate.set_defaults(func=cmd_translate)

    drc = sub.add_parser("drc", help="design-rule-check a layout file")
    drc.add_argument("layout")
    drc.add_argument("--tech", default="generic_bicmos_1u")
    drc.add_argument("--no-latchup", action="store_true")
    drc.add_argument(
        "--brute",
        action="store_true",
        help="use the all-pairs reference checker instead of the sweep index",
    )
    drc.set_defaults(func=cmd_drc)

    render = sub.add_parser("render", help="render a layout file to SVG")
    render.add_argument("layout")
    render.add_argument("-o", "--output", required=True)
    render.add_argument("--tech", default="generic_bicmos_1u")
    render.add_argument("--scale", type=float, default=0.02)
    render.set_defaults(func=cmd_render)

    session = sub.add_parser("session", help="record a two-window session")
    session.add_argument("source")
    session.add_argument("-o", "--output", required=True)
    session.add_argument("--tech", default="generic_bicmos_1u")
    session.set_defaults(func=cmd_session)

    rc = sub.add_parser("rc", help="per-net RC report of a layout file")
    rc.add_argument("layout")
    rc.add_argument("--tech", default="generic_bicmos_1u")
    rc.set_defaults(func=cmd_rc)

    amplifier = sub.add_parser("amplifier", help="build the Sec. 3 amplifier")
    amplifier.add_argument("-o", "--output", default="amplifier_out")
    amplifier.add_argument("--tech", default="generic_bicmos_1u")
    amplifier.add_argument(
        "--no-selfcheck", action="store_true",
        help="skip the interpreter/optimizer pipeline exercise",
    )
    amplifier.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run the selfcheck order search on N worker processes"
             " (0 = one per CPU); with --trace the worker spans are merged"
             " into the written Chrome trace",
    )
    amplifier.set_defaults(func=cmd_amplifier)

    verify = sub.add_parser(
        "verify",
        help="run the verification harness (golden cells, fuzzer,"
             " differential compaction)",
    )
    verify.add_argument(
        "--all", action="store_true",
        help="golden regression plus fuzz and differential smoke runs"
             " (the default when no other selection is given)",
    )
    verify.add_argument(
        "--golden", action="store_true",
        help="check library-cell CIF/GDS hashes against golden_hashes.json",
    )
    verify.add_argument(
        "--update-golden", action="store_true",
        help="regenerate golden_hashes.json from current output",
    )
    verify.add_argument(
        "--fuzz", type=int, metavar="N", default=0,
        help="run N seeded PLDL fuzz cases (interpreter vs translated)",
    )
    verify.add_argument(
        "--differential", type=int, metavar="N", default=0,
        help="run N seeded differential compaction trials",
    )
    verify.add_argument("--seed", type=int, default=0,
                        help="base seed for fuzz and differential runs")
    verify.add_argument(
        "--tech", default=None,
        help="restrict to one technology (default: all builtins for golden,"
             " generic_bicmos_1u for fuzz/differential)",
    )
    verify.add_argument(
        "--report", metavar="DIR",
        help="write failing fuzz programs and object sets to DIR",
    )
    verify.set_defaults(func=cmd_verify)

    explain = sub.add_parser(
        "explain",
        help="build a cell with provenance recording and explain every DRC"
             " violation (rule text, provenance chains, suggested fix)",
    )
    explain.add_argument(
        "cell",
        help="'amplifier' or any golden-regression cell name"
             " (e.g. diff_pair, mos_transistor)",
    )
    explain.add_argument("--tech", default="generic_bicmos_1u")
    explain.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of the text rendering",
    )
    explain.set_defaults(func=cmd_explain)

    report = sub.add_parser(
        "report",
        help="write the self-contained HTML run report (per-stage SVGs,"
             " provenance tooltips, violation table, optimizer trials)",
    )
    report.add_argument(
        "cell",
        help="'amplifier' or any golden-regression cell name",
    )
    report.add_argument("-o", "--output", default="run_report.html")
    report.add_argument("--tech", default="generic_bicmos_1u")
    report.set_defaults(func=cmd_report)

    stats = sub.add_parser(
        "stats",
        help="run a repro command under the tracer and print a span/counter"
             " summary table",
    )
    stats.add_argument(
        "--sort", choices=["name", "total", "mean", "calls", "max"],
        default="name",
        help="span table order: by name (default) or descending"
             " total/mean/calls/max time",
    )
    stats.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="show only the first N spans and N largest counters",
    )
    stats.add_argument(
        "stats_argv", nargs=argparse.REMAINDER, metavar="command",
        help="the repro command to run, e.g. 'repro stats amplifier'",
    )
    stats.set_defaults(func=None)

    perf = sub.add_parser(
        "perf",
        help="query the run ledger: history, diffs, baselines and"
             " noise-aware regression checks",
    )
    psub = perf.add_subparsers(dest="perf_action", required=True)

    # `--ledger` also works after the perf action (the natural position in
    # scripts); SUPPRESS keeps the sub-level default from clobbering the
    # root-level flag when the option is absent.
    ledger_opt = argparse.ArgumentParser(add_help=False)
    ledger_opt.add_argument(
        "--ledger", metavar="DIR", default=argparse.SUPPRESS,
        help="run-ledger directory (default: $REPRO_LEDGER_DIR or"
             " ~/.cache/repro/ledger)",
    )

    plog = psub.add_parser("log", parents=[ledger_opt],
                           help="list recorded runs, newest first")
    plog.add_argument("-n", "--limit", type=int, default=20)
    plog.add_argument("--command", dest="filter_command", default=None,
                      help="only runs of one command (e.g. amplifier)")
    plog.add_argument("--kind", default=None, choices=["cli", "bench"],
                      help="only CLI or only benchmark records")
    plog.set_defaults(func=cmd_perf)

    pshow = psub.add_parser("show", parents=[ledger_opt],
                            help="one run's full metric snapshot")
    pshow.add_argument(
        "run", nargs="?", default="last",
        help="run id, 'last', 'last~N' or 'last:<command>' (default: last)",
    )
    pshow.set_defaults(func=cmd_perf)

    pdiff = psub.add_parser(
        "diff", parents=[ledger_opt],
        help="compare two runs, or a run against a named baseline",
    )
    pdiff.add_argument("run_a", help="run reference or baseline name")
    pdiff.add_argument("run_b", help="run reference or baseline name")
    pdiff.add_argument(
        "--metric", action="append", metavar="PATTERN",
        help="fnmatch pattern(s) selecting metrics (default: all shared)",
    )
    pdiff.set_defaults(func=cmd_perf)

    pcheck = psub.add_parser(
        "check", parents=[ledger_opt],
        help="exit non-zero when a tracked metric regresses beyond the"
             " noise band (median-of-k vs baseline, MAD-aware)",
    )
    pcheck.add_argument(
        "--baseline", required=True, metavar="NAME_OR_DIR",
        help="a baseline saved with 'perf baseline', or a directory of"
             " committed BENCH_*.json reports (e.g. benchmarks/results)",
    )
    pcheck.add_argument(
        "--command", dest="filter_command", action="append", metavar="CMD",
        help="restrict the check to these command(s)",
    )
    pcheck.add_argument("-k", type=int, default=3,
                        help="fresh runs per command to take the median of"
                             " (default: 3)")
    pcheck.add_argument("--rel", type=float, default=0.25,
                        help="relative tolerance for noisy (timing/RSS)"
                             " metrics (default: 0.25)")
    pcheck.add_argument("--mads", type=float, default=3.0,
                        help="MAD multiplier widening the noise band"
                             " (default: 3)")
    pcheck.add_argument("--floor", type=float, default=0.0,
                        help="absolute slack added to every band"
                             " (default: 0 — counters must not grow at all)")
    pcheck.add_argument(
        "--metric", action="append", metavar="PATTERN",
        help="fnmatch pattern(s) selecting tracked metrics (default:"
             " timings, peak RSS, *compact_s, *pairs_scanned, overhead"
             " estimates)",
    )
    pcheck.set_defaults(func=cmd_perf)

    pbase = psub.add_parser(
        "baseline", parents=[ledger_opt],
        help="freeze the median/MAD of recent runs as a named baseline",
    )
    pbase.add_argument("name")
    pbase.add_argument("--command", dest="filter_command", default=None,
                       help="baseline only this command (default: every"
                            " command in the ledger)")
    pbase.add_argument("-k", type=int, default=5,
                       help="runs per command to aggregate (default: 5)")
    pbase.set_defaults(func=cmd_perf)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    from .obs.ledger import ledger_enabled

    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(-1 if args.quiet else args.verbose)

    want_stats = args.command == "stats"
    outer = args
    if want_stats:
        inner = list(args.stats_argv)
        if inner and inner[0] == "--":
            inner = inner[1:]
        if not inner:
            parser.error("stats: expected a command to run, e.g. 'repro stats"
                         " amplifier'")
        args = parser.parse_args(inner)
        if args.command == "stats":
            parser.error("stats: cannot be nested")
        # Global flags compose: values given on either side of `stats` win
        # over defaults.
        if outer.trace and not args.trace:
            args.trace = outer.trace
        if outer.profile and not args.profile:
            args.profile = outer.profile
        if outer.ledger and not args.ledger:
            args.ledger = outer.ledger
        args.no_ledger = args.no_ledger or outer.no_ledger
        args.profile_memory = args.profile_memory or outer.profile_memory
        configure_logging(-1 if (args.quiet or outer.quiet)
                          else max(args.verbose, outer.verbose))

    # The ledger records every command except `perf` itself (reading the
    # history should not grow it).
    record_run = ledger_enabled(opt_out=args.no_ledger) and args.command != "perf"

    if not (want_stats or args.trace or args.profile or record_run):
        return args.func(args)

    tracer = Tracer(enabled=True)
    stats_sink = StatsSink()
    tracer.add_sink(stats_sink)
    chrome = None
    if args.trace:
        chrome = ChromeTraceSink(args.trace)
        tracer.add_sink(chrome)
    profiler = None
    if args.profile:
        from .obs import SamplingProfiler

        profiler = SamplingProfiler(
            interval_s=args.profile_interval / 1000.0,
            mode="memory" if args.profile_memory else "wall",
            chrome_sink=chrome,
            epoch_ns=tracer.epoch_ns,
        )
    previous = set_tracer(tracer)
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    status = 1
    error: Optional[str] = None
    try:
        if profiler is not None:
            profiler.start()
        try:
            status = args.func(args)
        except SystemExit as exc:
            # Crashed runs stay in the ledger: keep the real exit status and
            # the exception type, then let the exception propagate.
            error = type(exc).__name__
            status = exc.code if isinstance(exc.code, int) else (
                0 if exc.code is None else 1
            )
            raise
        except BaseException as exc:
            error = type(exc).__name__
            status = 1
            raise
    finally:
        wall_s = time.perf_counter() - wall_start
        cpu_s = time.process_time() - cpu_start
        if profiler is not None:
            profiler.stop()
        set_tracer(previous)
        tracer.close()
        if args.trace:
            log.info("wrote trace %s", args.trace)
        if profiler is not None:
            profiler.write_folded(args.profile)
            print(profiler.top_table(top=args.profile_top))
            log.info("wrote profile %s (%d samples)", args.profile,
                     profiler.sample_count)
        if want_stats:
            print(stats_sink.format_table(sort=outer.sort, top=outer.top))
        if record_run:
            _record_ledger_run(args, argv, status, wall_s, cpu_s,
                               stats_sink, profiler, error=error)
    return status


def _record_ledger_run(
    args: argparse.Namespace,
    argv: Optional[List[str]],
    status: int,
    wall_s: float,
    cpu_s: float,
    stats_sink: StatsSink,
    profiler: Any,
    error: Optional[str] = None,
) -> None:
    """Append one run record; a broken ledger only warns, never fails.

    *error* is the exception type name for a run that raised (including
    ``SystemExit`` with a non-zero code) — stored under ``extra`` so
    crash-rate regressions are visible in ``repro perf log``.
    """
    from .obs.ledger import (
        Ledger,
        RunRecord,
        current_git_sha,
        peak_rss_kb,
        snapshot_metrics,
    )

    metrics = snapshot_metrics(stats_sink)
    if profiler is not None:
        metrics["profile.samples"] = float(profiler.sample_count)
    record = RunRecord(
        args.command,
        argv=list(argv) if argv is not None else sys.argv[1:],
        tech=getattr(args, "tech", None),
        git_sha=current_git_sha(),
        status=status if isinstance(status, int) else 1,
        wall_s=wall_s,
        cpu_s=cpu_s,
        peak_rss_kb=peak_rss_kb(),
        metrics=metrics,
        extra={"error": error} if error else None,
    )
    with Ledger(args.ledger) as ledger:
        ledger.try_append(record)


if __name__ == "__main__":
    sys.exit(main())

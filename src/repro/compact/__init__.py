"""Successive compaction (Sec. 2.3)."""

from .compactor import MAX_SHRINK_ROUNDS, CompactionResult, Compactor
from .separation import (
    PairConstraint,
    frontier_filter,
    gather_constraints,
    overlap_forbidden,
    pair_travel,
    required_spacing,
)

__all__ = [
    "MAX_SHRINK_ROUNDS",
    "CompactionResult",
    "Compactor",
    "PairConstraint",
    "frontier_filter",
    "gather_constraints",
    "overlap_forbidden",
    "pair_travel",
    "required_spacing",
]

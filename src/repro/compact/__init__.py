"""Successive compaction (Sec. 2.3)."""

from .compactor import MAX_SHRINK_ROUNDS, CompactionResult, Compactor
from .index import FrontierIndex, LayerBucket
from .separation import (
    PairConstraint,
    bridge_profile,
    frontier_filter,
    gather_constraints,
    gather_constraints_grouped,
    overlap_forbidden,
    pair_travel,
    required_spacing,
)

__all__ = [
    "MAX_SHRINK_ROUNDS",
    "CompactionResult",
    "Compactor",
    "FrontierIndex",
    "LayerBucket",
    "PairConstraint",
    "bridge_profile",
    "frontier_filter",
    "gather_constraints",
    "gather_constraints_grouped",
    "overlap_forbidden",
    "pair_travel",
    "required_spacing",
]

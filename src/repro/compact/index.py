"""Incremental frontier index for the compactor hot path.

The paper's central speed-up is that "only outer edges of the main object
have to be kept in the data structure".  :func:`~repro.compact.separation.
frontier_filter` implements that pruning, but as a from-scratch pass: every
compaction step (and every variable-edge shrink round inside a step)
re-scans all of ``main.rects``, re-buckets them by layer, re-sorts each
bucket and re-sweeps the interval unions.  The :class:`FrontierIndex` keeps
that state *persistent* per :class:`~repro.db.LayoutObject` and updates it
incrementally as rects merge, stretch (auto-connect) and shrink (variable
edges), so a step only pays for the layers it actually touched.

Structure, per owning object:

* **layer buckets** — every rect, grouped by layer in rect-list order
  (``seq`` = position in ``owner.rects``; positions never change because
  rects are only ever appended);
* **per-direction frontier caches** — for each bucket, the survivors of the
  nearest-first interval sweep, keyed by ``(direction, relevant_nets)`` and
  cleared whenever any rect of that layer changes;
* **(net, layer) resident buckets** — the same-potential lookup
  :meth:`Compactor._auto_connect` needs;
* **a grow-only bounding box per bucket** — a conservative envelope used to
  skip whole layers in bridge-blocking queries.

Exactness contract: every query reproduces the from-scratch result *in the
same order*.  Within a layer the sweep sorts by (facing-edge key, seq),
which equals the stable sort :func:`frontier_filter` performs on the
seq-ordered bucket; across layers, groups are emitted by the smallest seq
of a layer's non-empty rects, which equals the first-occurrence order of
``LayoutObject.nonempty_rects``.  ``tests/test_frontier_index.py`` pins
this equivalence under randomized merge/stretch/shrink sequences, and the
differential harness races an indexed against an unindexed compactor.

Staleness: mutations that flow through :class:`~repro.db.LayoutObject`
methods (``merge``, ``add_rect``, ``move_edge``, ``move_stretch``,
``translate``, transforms, net edits) are tracked — incrementally on the
hot paths, via a dirty flag (full rebuild on next query) elsewhere.  Code
that pokes rect coordinates, nets, layers or ``no_overlap`` flags directly
must call :meth:`LayoutObject.invalidate_index` afterwards.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..geometry import Direction, Rect
from ..obs import get_tracer
from .separation import IntervalSet, bridge_profile

__all__ = ["FrontierIndex", "LayerBucket"]


class LayerBucket:
    """All rects of one layer, in rect-list (seq) order, plus cached views."""

    __slots__ = ("layer", "rects", "seqs", "nets", "bbox", "frontiers")

    def __init__(self, layer: str) -> None:
        self.layer = layer
        #: Member rects in append order; parallel to :attr:`seqs`.
        self.rects: List[Rect] = []
        self.seqs: List[int] = []
        #: Every net ever seen on this layer (grow-only over-approximation;
        #: used to restrict frontier cache keys to nets that can matter).
        self.nets: set = set()
        #: Grow-only envelope [x1, y1, x2, y2] of every coordinate any
        #: member ever occupied; conservative for intersection pruning.
        self.bbox: Optional[List[int]] = None
        #: (direction, relevant_nets) -> frontier survivors, cleared on any
        #: member change.
        self.frontiers: Dict[Tuple[Direction, FrozenSet[str]], List[Rect]] = {}

    def add(self, seq: int, rect: Rect) -> None:
        self.rects.append(rect)
        self.seqs.append(seq)
        if rect.net is not None:
            self.nets.add(rect.net)
        self.cover(rect)
        if self.frontiers:
            self.frontiers.clear()

    def cover(self, rect: Rect) -> None:
        """Grow the envelope over the rect's current coordinates."""
        box = self.bbox
        if box is None:
            self.bbox = [rect.x1, rect.y1, rect.x2, rect.y2]
            return
        if rect.x1 < box[0]:
            box[0] = rect.x1
        if rect.y1 < box[1]:
            box[1] = rect.y1
        if rect.x2 > box[2]:
            box[2] = rect.x2
        if rect.y2 > box[3]:
            box[3] = rect.y2

    def first_nonempty_seq(self) -> Optional[int]:
        """Seq of the earliest non-empty member (layer ordering key)."""
        for seq, rect in zip(self.seqs, self.rects):
            if not rect.is_empty:
                return seq
        return None


class FrontierIndex:
    """Persistent spatial index over one :class:`LayoutObject`'s rects."""

    __slots__ = (
        "owner", "_rects_ref", "_tracked", "_dirty",
        "buckets", "_members", "_empty", "nonempty", "net_buckets",
        "rebuilds", "_bbox", "_bbox_valid",
    )

    def __init__(self, owner) -> None:
        self.owner = owner
        self._rects_ref: Optional[list] = None
        self._tracked = 0
        self._dirty = True
        #: layer -> LayerBucket, in first-added order.
        self.buckets: Dict[str, LayerBucket] = {}
        #: id(rect) -> rect, for resolving change notifications.
        self._members: Dict[int, Rect] = {}
        #: id(rect) -> last-known emptiness, so emptiness flips keep
        #: :attr:`nonempty` exact without rescanning.
        self._empty: Dict[int, bool] = {}
        self.nonempty = 0
        #: (net, layer) -> member rects in seq order (may include empties;
        #: queries filter).
        self.net_buckets: Dict[Tuple[str, str], List[Rect]] = {}
        self.rebuilds = 0
        #: Exact bounding box [x1, y1, x2, y2] of the *non-empty* members
        #: (unlike the grow-only bucket envelopes).  Appends and uniform
        #: translations maintain it; coordinate changes invalidate it and
        #: :meth:`bbox` recomputes lazily from the bucket members.
        self._bbox: Optional[List[int]] = None
        self._bbox_valid = True

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Catch up with the owner's rect list (appends are incremental;
        list replacement or an explicit dirty mark trigger a rebuild)."""
        rects = self.owner.rects
        if self._dirty or self._rects_ref is not rects or self._tracked > len(rects):
            self._rebuild()
            return
        if self._tracked < len(rects):
            for seq in range(self._tracked, len(rects)):
                self._add(seq, rects[seq])
            self._tracked = len(rects)

    def _rebuild(self) -> None:
        self.buckets.clear()
        self._members.clear()
        self._empty.clear()
        self.net_buckets.clear()
        self.nonempty = 0
        self._bbox = None
        self._bbox_valid = True
        rects = self.owner.rects
        for seq, rect in enumerate(rects):
            self._add(seq, rect)
        self._rects_ref = rects
        self._tracked = len(rects)
        self._dirty = False
        self.rebuilds += 1
        get_tracer().count("compact.index_rebuilds")

    def _add(self, seq: int, rect: Rect) -> None:
        bucket = self.buckets.get(rect.layer)
        if bucket is None:
            bucket = self.buckets[rect.layer] = LayerBucket(rect.layer)
        bucket.add(seq, rect)
        rid = id(rect)
        self._members[rid] = rect
        empty = rect.is_empty
        self._empty[rid] = empty
        if not empty:
            self.nonempty += 1
            if self._bbox_valid:
                box = self._bbox
                if box is None:
                    self._bbox = [rect.x1, rect.y1, rect.x2, rect.y2]
                else:
                    if rect.x1 < box[0]:
                        box[0] = rect.x1
                    if rect.y1 < box[1]:
                        box[1] = rect.y1
                    if rect.x2 > box[2]:
                        box[2] = rect.x2
                    if rect.y2 > box[3]:
                        box[3] = rect.y2
        if rect.net is not None:
            self.net_buckets.setdefault((rect.net, rect.layer), []).append(rect)

    def mark_dirty(self) -> None:
        """Schedule a full rebuild on the next query."""
        self._dirty = True

    def in_sync(self) -> bool:
        """True when the index exactly mirrors the owner's rect list."""
        return (
            not self._dirty
            and self._rects_ref is self.owner.rects
            and self._tracked == len(self.owner.rects)
        )

    def note_translate(self, dx: int, dy: int) -> None:
        """A uniform translation preserves every cached view; only the
        bucket envelopes need shifting."""
        if self._dirty:
            return
        for bucket in self.buckets.values():
            box = bucket.bbox
            if box is not None:
                box[0] += dx
                box[1] += dy
                box[2] += dx
                box[3] += dy
        if self._bbox_valid and self._bbox is not None:
            box = self._bbox
            box[0] += dx
            box[1] += dy
            box[2] += dx
            box[3] += dy

    def note_changed_ids(self, rect_ids: Iterable[int]) -> None:
        """Coordinates of the given member rects changed (shrink/stretch/
        link rebuild).  Unknown ids — e.g. link-private array cuts that
        never entered the owner's rect list — are ignored."""
        if self._dirty:
            return
        # Members may have shrunk, so the exact bbox can only be recomputed.
        self._bbox_valid = False
        members = self._members
        empties = self._empty
        for rid in rect_ids:
            rect = members.get(rid)
            if rect is None:
                continue
            bucket = self.buckets[rect.layer]
            if bucket.frontiers:
                bucket.frontiers.clear()
            bucket.cover(rect)
            empty = rect.is_empty
            if empty != empties[rid]:
                empties[rid] = empty
                self.nonempty += -1 if empty else 1

    def clone_into(self, clone, mapping: Dict[int, Rect]) -> "FrontierIndex":
        """Port the index (including warm frontier caches) onto a snapshot
        whose rects were cloned through *mapping* with positions preserved.
        """
        twin = FrontierIndex(clone)
        twin._dirty = False
        twin._rects_ref = clone.rects
        twin._tracked = self._tracked
        twin.nonempty = self.nonempty
        twin._bbox = list(self._bbox) if self._bbox is not None else None
        twin._bbox_valid = self._bbox_valid
        for layer, bucket in self.buckets.items():
            ported = LayerBucket(layer)
            ported.rects = [mapping[id(r)] for r in bucket.rects]
            ported.seqs = list(bucket.seqs)
            ported.nets = set(bucket.nets)
            ported.bbox = list(bucket.bbox) if bucket.bbox is not None else None
            ported.frontiers = {
                key: [mapping[id(r)] for r in survivors]
                for key, survivors in bucket.frontiers.items()
            }
            twin.buckets[layer] = ported
        for rid, rect in self._members.items():
            moved = mapping[rid]
            twin._members[id(moved)] = moved
            twin._empty[id(moved)] = self._empty[rid]
        for key, rects in self.net_buckets.items():
            twin.net_buckets[key] = [mapping[id(r)] for r in rects]
        return twin

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when the owner holds no non-empty geometry.

        Served from the exact :attr:`nonempty` count — no rect scan.
        """
        return self.nonempty == 0

    def bbox(self) -> Optional[Rect]:
        """Exact bounding box of the owner's non-empty rects (or None).

        Equals ``bounding_box(owner.nonempty_rects)`` coordinate for
        coordinate.  Appends and translations keep the cache exact in
        O(1); after shrinks/stretches (:meth:`note_changed_ids`) the first
        query recomputes it from the layer buckets.
        """
        if self.nonempty == 0:
            return None
        if not self._bbox_valid:
            box: Optional[List[int]] = None
            for bucket in self.buckets.values():
                for rect in bucket.rects:
                    if rect.is_empty:
                        continue
                    if box is None:
                        box = [rect.x1, rect.y1, rect.x2, rect.y2]
                        continue
                    if rect.x1 < box[0]:
                        box[0] = rect.x1
                    if rect.y1 < box[1]:
                        box[1] = rect.y1
                    if rect.x2 > box[2]:
                        box[2] = rect.x2
                    if rect.y2 > box[3]:
                        box[3] = rect.y2
            self._bbox = box
            self._bbox_valid = True
            get_tracer().count("compact.index_bbox_rescans")
        box = self._bbox
        assert box is not None  # nonempty > 0 guarantees a member
        return Rect(box[0], box[1], box[2], box[3], "bbox")

    def frontier_groups(
        self, direction: Direction, arrival_nets: FrozenSet[str]
    ) -> List[Tuple[str, List[Rect]]]:
        """Per-layer frontier survivors, ``[(layer, rects), ...]``.

        Concatenated, the groups equal ``frontier_filter(owner.
        nonempty_rects, direction, arrival_nets)`` element for element:
        layers ordered by their earliest non-empty rect, survivors in
        nearest-first stable order.
        """
        ordered = []
        for layer, bucket in self.buckets.items():
            seq = bucket.first_nonempty_seq()
            if seq is not None:
                ordered.append((seq, layer, bucket))
        ordered.sort(key=lambda item: item[0])
        tracer = get_tracer()
        groups: List[Tuple[str, List[Rect]]] = []
        for _, layer, bucket in ordered:
            groups.append((layer, self._bucket_frontier(bucket, direction,
                                                        arrival_nets, tracer)))
        return groups

    def _bucket_frontier(
        self,
        bucket: LayerBucket,
        direction: Direction,
        arrival_nets: FrozenSet[str],
        tracer,
    ) -> List[Rect]:
        # Only nets actually present on the layer can alter the sweep, so
        # arrivals with disjoint nets share one cache entry.
        if arrival_nets and bucket.nets:
            relevant = frozenset(n for n in arrival_nets if n in bucket.nets)
        else:
            relevant = frozenset()
        key = (direction, relevant)
        cached = bucket.frontiers.get(key)
        if cached is not None:
            tracer.count("compact.index_sweep_hits")
            return cached
        survivors = self._sweep(bucket, direction, arrival_nets)
        bucket.frontiers[key] = survivors
        tracer.count("compact.index_sweeps")
        return survivors

    @staticmethod
    def _sweep(
        bucket: LayerBucket, direction: Direction, arrival_nets: FrozenSet[str]
    ) -> List[Rect]:
        """One layer of ``frontier_filter``: nearest-first interval sweep."""
        facing = direction.opposite
        sign = 1 if direction.is_positive else -1
        perp = direction.axis.other
        layer_rects = [r for r in bucket.rects if not r.is_empty]
        layer_rects.sort(key=lambda r: sign * r.edge_coord(facing))
        survivors: List[Rect] = []
        general = IntervalSet()
        general_strict = IntervalSet()
        per_net: dict = {}
        for rect in layer_rects:
            lo, hi = rect.span(perp)
            cover = general_strict if rect.no_overlap else general
            own = per_net.get(rect.net)
            shadowed = cover.contains(lo, hi) or (
                own is not None and own.contains(lo, hi)
            )
            if not shadowed:
                survivors.append(rect)
            if rect.net is None or rect.net not in arrival_nets:
                general.add(lo, hi)
                if rect.no_overlap:
                    general_strict.add(lo, hi)
            else:
                per_net.setdefault(rect.net, IntervalSet()).add(lo, hi)
        return survivors

    def residents(self, net: str, layer: str) -> List[Rect]:
        """Same-net same-layer member rects in seq order (may include
        empties — callers filter, matching the from-scratch bucket scan)."""
        return self.net_buckets.get((net, layer), _NO_RECTS)

    def bridge_blocked(self, bridge: Rect, net: str) -> bool:
        """True when stretching across *bridge* would violate a rule.

        Semantically identical to the naive scan over every non-empty rect
        (same-layer spacing, cross-layer spacing, EXTEND device formation),
        but layer-pair rules are hoisted out of the rect loop through the
        memoized :func:`~repro.compact.separation.bridge_profile`, the
        grown probe rect is built once per layer, and whole layers are
        skipped when no rule can apply or the bucket envelope cannot reach
        the probe.
        """
        tech = self.owner.tech
        bridge_layer = bridge.layer
        for layer, bucket in self.buckets.items():
            profile = bridge_profile(tech, bridge_layer, layer)
            if profile is None:
                continue  # no spacing rule, no device rule: cannot block
            connect, spacing, forms_device = profile
            probe = bridge if spacing is None else bridge.grown(spacing)
            box = bucket.bbox
            if box is None or box[0] >= probe.x2 or probe.x1 >= box[2] \
                    or box[1] >= probe.y2 or probe.y1 >= box[3]:
                continue
            px1, py1, px2, py2 = probe.x1, probe.y1, probe.x2, probe.y2
            bx1, by1, bx2, by2 = bridge.x1, bridge.y1, bridge.x2, bridge.y2
            check_space = spacing is not None
            for rect in bucket.rects:
                if rect.x1 >= rect.x2 or rect.y1 >= rect.y2:
                    continue
                if connect and rect.net == net:
                    continue
                if forms_device and (
                    bx1 < rect.x2 and rect.x1 < bx2
                    and by1 < rect.y2 and rect.y1 < by2
                ):
                    return True
                if check_space and (
                    px1 < rect.x2 and rect.x1 < px2
                    and py1 < rect.y2 and rect.y1 < py2
                ):
                    return True
        return False


_NO_RECTS: List[Rect] = []

"""Pairwise separation constraints for successive compaction.

Given one rectangle of the moving object and one of the main structure plus
the compaction direction, decide whether the pair constrains the motion and,
if so, how far the object may travel.  Encodes the paper's special cases:

* layers listed as "not relevant during this compaction step" are skipped;
* "edges on the same potential are not considered during compaction, because
  they can be merged" — same-net pairs on connectable layers are skipped;
* the per-rectangle *no_overlap* property forbids overlap even between layer
  pairs that carry no spacing rule (parasitic-capacitance protection).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..geometry import Direction, Rect
from ..obs import get_tracer
from ..tech import Technology

#: Sentinel for "this pair never constrains the motion".
UNCONSTRAINED = None

#: Distinguishes "profile not computed yet" from a computed ``None``.
_MISSING = object()


@dataclass(slots=True)
class PairConstraint:
    """One active separation constraint between a moving and a fixed rect.

    ``max_travel`` is the largest signed travel (along the compaction
    direction, positive = with the direction) the moving rect may make before
    the required ``spacing`` to the fixed rect is violated.
    """

    moving: Rect
    fixed: Rect
    spacing: int
    max_travel: int


def required_spacing(
    tech: Technology,
    moving: Rect,
    fixed: Rect,
    ignore_layers: FrozenSet[str],
) -> Optional[int]:
    """Spacing the pair must keep, or ``None`` when unconstrained.

    A result of 0 means "may touch but not overlap" (the no_overlap case);
    any rule-driven spacing comes back verbatim.
    """
    if moving.layer in ignore_layers or fixed.layer in ignore_layers:
        return UNCONSTRAINED
    if moving.is_empty or fixed.is_empty:
        return UNCONSTRAINED

    same_net = (
        moving.net is not None
        and moving.net == fixed.net
        and tech.connectable(moving.layer, fixed.layer)
    )
    if same_net:
        return UNCONSTRAINED

    rule = tech.min_space(moving.layer, fixed.layer)
    if rule is not None:
        return rule

    if (moving.no_overlap or fixed.no_overlap) and (
        tech.layer(moving.layer).conducting and tech.layer(fixed.layer).conducting
    ):
        return 0
    return UNCONSTRAINED


def overlap_forbidden(
    tech: Technology,
    a: Rect,
    b: Rect,
    ignore_layers: FrozenSet[str] = frozenset(),
) -> bool:
    """True when the pair may touch but must never overlap.

    The *no_overlap* special case of :func:`required_spacing`, exposed for
    post-hoc auditing (``repro.verify``): a parasitic-protection rectangle
    on a conducting layer forbids overlap with any other conducting rect
    unless an explicit SPACE rule governs the pair or the rects are
    same-net connectable.
    """
    if a.layer in ignore_layers or b.layer in ignore_layers:
        return False
    if a.is_empty or b.is_empty:
        return False
    if not (a.no_overlap or b.no_overlap):
        return False
    if not (tech.layer(a.layer).conducting and tech.layer(b.layer).conducting):
        return False
    if a.net is not None and a.net == b.net and tech.connectable(a.layer, b.layer):
        return False
    if tech.min_space(a.layer, b.layer) is not None:
        return False
    return True


def pair_travel(moving: Rect, fixed: Rect, direction: Direction, spacing: int) -> Optional[int]:
    """Max travel of *moving* along *direction* keeping *spacing* to *fixed*.

    Returns ``None`` when the pair does not constrain motion along this axis
    (their perpendicular spans, grown by the spacing, do not overlap).
    """
    perp = direction.axis.other
    margin = max(spacing, 0)
    if not moving.spans_overlap(fixed, perp, margin=margin):
        return None
    sign = 1 if direction.is_positive else -1
    lead = moving.edge_coord(direction)
    face = fixed.edge_coord(direction.opposite)
    return (face - lead) * sign - spacing


def _pair_profile(
    tech: Technology, moving_layer: str, fixed_layer: str
) -> Optional[Tuple[Optional[int], bool, bool]]:
    """Per-layer-pair constraint profile: (rule spacing, connectable, conducting).

    ``None`` means the layer pair can never constrain motion — no spacing rule
    exists and the pair is not both-conducting, so the *no_overlap* fallback
    can never apply either, whatever the rects' nets and flags say.

    Memoized on the technology's version-stamped query cache, so the answer
    survives across compaction steps and invalidates itself on rule edits.
    """
    cache = tech.query_cache()
    key = ("pair_profile", moving_layer, fixed_layer)
    profile = cache.get(key, _MISSING)
    if profile is _MISSING:
        rule = tech.min_space(moving_layer, fixed_layer)
        conducting = (
            tech.layer(moving_layer).conducting
            and tech.layer(fixed_layer).conducting
        )
        if rule is None and not conducting:
            profile = None
        else:
            profile = (rule, tech.connectable(moving_layer, fixed_layer),
                       conducting)
        cache[key] = profile
    return profile


def bridge_profile(
    tech: Technology, bridge_layer: str, other_layer: str
) -> Optional[Tuple[bool, Optional[int], bool]]:
    """Auto-connect bridge-blocking profile: (connectable, spacing, device).

    Everything :meth:`Compactor._bridge_blocked` asks the rule tables per
    rect, hoisted to one memoized lookup per layer pair: whether same-net
    rects are skippable (connectable), the spacing a grown probe must keep
    (same-layer pairs default to 0 = "may touch, not overlap"), and whether
    overlap would form a device (an EXTEND relationship either way — a poly
    bridge must never cross diffusion).  ``None`` means rects on
    *other_layer* can never block a *bridge_layer* stretch.
    """
    cache = tech.query_cache()
    key = ("bridge_profile", bridge_layer, other_layer)
    profile = cache.get(key, _MISSING)
    if profile is _MISSING:
        if other_layer == bridge_layer:
            spacing = tech.min_space(bridge_layer, bridge_layer) or 0
            profile = (True, spacing, False)
        else:
            rules = tech.rules
            forms_device = (
                rules.extend(bridge_layer, other_layer) is not None
                or rules.extend(other_layer, bridge_layer) is not None
            )
            spacing = tech.min_space(bridge_layer, other_layer)
            if spacing is None and not forms_device:
                profile = None
            else:
                profile = (
                    tech.connectable(other_layer, bridge_layer),
                    spacing,
                    forms_device,
                )
        cache[key] = profile
    return profile


def gather_constraints(
    tech: Technology,
    moving_rects: Sequence[Rect],
    fixed_rects: Sequence[Rect],
    direction: Direction,
    ignore_layers: Iterable[str] = (),
) -> List[PairConstraint]:
    """All active pair constraints for one compaction step.

    Semantically the all-pairs product of :func:`required_spacing` and
    :func:`pair_travel` (in that pair order), but the rule-table work is done
    once per *layer pair* instead of once per *rect pair*: fixed rects are
    pre-filtered per moving layer through a memoized :func:`_pair_profile`,
    so layer pairs that can never constrain (no SPACE rule, not both
    conducting) skip the inner loop entirely and the remaining pairs touch no
    rule table at all.
    """
    ignore = frozenset(ignore_layers)
    constraints: List[PairConstraint] = []
    if not moving_rects or not fixed_rects:
        return constraints

    perp = direction.axis.other
    facing = direction.opposite
    sign = 1 if direction.is_positive else -1

    profiles: Dict[Tuple[str, str], object] = {}
    # Per moving layer: the fixed rects that can interact, in original order
    # (relaxation iterates binding constraints in list order, so the fast
    # path must preserve the naive loop's pair ordering exactly).
    candidates: Dict[str, List[Tuple[Rect, Optional[int], bool, bool]]] = {}

    def layer_candidates(moving_layer: str) -> List[Tuple[Rect, Optional[int], bool, bool]]:
        cached = candidates.get(moving_layer)
        if cached is not None:
            return cached
        rows: List[Tuple[Rect, Optional[int], bool, bool]] = []
        for fixed in fixed_rects:
            if fixed.layer in ignore or fixed.is_empty:
                continue
            profile = profiles.get((moving_layer, fixed.layer), _MISSING)
            if profile is _MISSING:
                profile = _pair_profile(tech, moving_layer, fixed.layer)
                profiles[(moving_layer, fixed.layer)] = profile
            if profile is None:
                continue
            rule, connect, conducting = profile
            rows.append((fixed, rule, connect, conducting))
        candidates[moving_layer] = rows
        return rows

    pairs_scanned = 0
    for moving in moving_rects:
        if moving.layer in ignore or moving.is_empty:
            continue
        net = moving.net
        no_overlap = moving.no_overlap
        lead = moving.edge_coord(direction)
        m1, m2 = moving.span(perp)
        rows = layer_candidates(moving.layer)
        pairs_scanned += len(rows)
        for fixed, rule, connect, conducting in rows:
            if net is not None and net == fixed.net and connect:
                continue
            if rule is not None:
                spacing = rule
            elif conducting and (no_overlap or fixed.no_overlap):
                spacing = 0
            else:
                continue
            margin = spacing if spacing > 0 else 0
            b1, b2 = fixed.span(perp)
            if not (m1 - margin < b2 and b1 - margin < m2):
                continue
            travel = (fixed.edge_coord(facing) - lead) * sign - spacing
            constraints.append(PairConstraint(moving, fixed, spacing, travel))
    get_tracer().count("compact.pairs_scanned", pairs_scanned)
    return constraints


def gather_constraints_grouped(
    tech: Technology,
    moving_rects: Sequence[Rect],
    fixed_groups: Sequence[Tuple[str, Sequence[Rect]]],
    direction: Direction,
    ignore_layers: Iterable[str] = (),
) -> List[PairConstraint]:
    """:func:`gather_constraints` over layer-grouped fixed rects.

    *fixed_groups* is ``[(layer, rects), ...]`` — the shape the frontier
    index serves.  The result is identical (same constraints, same order) to
    calling :func:`gather_constraints` on the concatenation of the groups:
    the naive rows per moving layer are that concatenation filtered by the
    layer-pair profile, i.e. whole groups kept or skipped in sequence.
    Skipping happens per *group* here, so a moving rect never iterates
    rects on layers that cannot constrain it.  Group members must be
    non-empty (the frontier sweep guarantees this).
    """
    ignore = frozenset(ignore_layers)
    constraints: List[PairConstraint] = []
    if not moving_rects or not fixed_groups:
        return constraints

    perp = direction.axis.other
    facing = direction.opposite
    sign = 1 if direction.is_positive else -1

    profiles: Dict[Tuple[str, str], object] = {}
    pairs_scanned = 0
    for moving in moving_rects:
        mlayer = moving.layer
        if mlayer in ignore or moving.is_empty:
            continue
        net = moving.net
        no_overlap = moving.no_overlap
        lead = moving.edge_coord(direction)
        m1, m2 = moving.span(perp)
        for flayer, frects in fixed_groups:
            if flayer in ignore or not frects:
                continue
            profile = profiles.get((mlayer, flayer), _MISSING)
            if profile is _MISSING:
                profile = _pair_profile(tech, mlayer, flayer)
                profiles[(mlayer, flayer)] = profile
            if profile is None:
                continue
            rule, connect, conducting = profile
            pairs_scanned += len(frects)
            for fixed in frects:
                if net is not None and net == fixed.net and connect:
                    continue
                if rule is not None:
                    spacing = rule
                elif conducting and (no_overlap or fixed.no_overlap):
                    spacing = 0
                else:
                    continue
                margin = spacing if spacing > 0 else 0
                b1, b2 = fixed.span(perp)
                if not (m1 - margin < b2 and b1 - margin < m2):
                    continue
                travel = (fixed.edge_coord(facing) - lead) * sign - spacing
                constraints.append(PairConstraint(moving, fixed, spacing, travel))
    get_tracer().count("compact.pairs_scanned", pairs_scanned)
    return constraints


class IntervalSet:
    """A union of 1-D closed intervals with containment queries."""

    def __init__(self) -> None:
        self._spans: List[List[int]] = []  # sorted, disjoint [lo, hi]

    def add(self, lo: int, hi: int) -> None:
        """Insert [lo, hi], merging overlapping/adjacent intervals."""
        if lo >= hi:
            return
        index = bisect.bisect_left(self._spans, [lo, hi])
        if index > 0 and self._spans[index - 1][1] >= lo:
            index -= 1
        new_lo, new_hi = lo, hi
        while index < len(self._spans) and self._spans[index][0] <= new_hi:
            new_lo = min(new_lo, self._spans[index][0])
            new_hi = max(new_hi, self._spans[index][1])
            del self._spans[index]
        self._spans.insert(index, [new_lo, new_hi])

    def contains(self, lo: int, hi: int) -> bool:
        """True when [lo, hi] lies inside one merged interval."""
        index = bisect.bisect_right(self._spans, [lo + 1]) - 1
        if index < 0:
            return False
        span = self._spans[index]
        return span[0] <= lo and hi <= span[1]


def frontier_filter(
    rects: Sequence[Rect],
    direction: Direction,
    arrival_nets: FrozenSet[str] = frozenset(),
) -> List[Rect]:
    """Drop fixed rects fully shadowed behind nearer same-layer geometry.

    The paper's "only outer edges of the main object have to be kept in the
    data structure" speed-up.  A rect whose perpendicular span is covered by
    nearer same-layer rects can never bind — with two soundness conditions:

    * a shadower whose net the arriving object carries might itself be
      skipped by the same-potential rule, so it may only shadow rects of its
      own net (``arrival_nets`` names the arriving object's nets);
    * a plain rect may not shadow a ``no_overlap`` rect — when no spacing
      rule exists, only the latter constrains the motion.

    Implemented as a nearest-first sweep over interval unions: O(n log n)
    per compaction step instead of the naive all-pairs scan.
    """
    facing = direction.opposite
    sign = 1 if direction.is_positive else -1
    perp = direction.axis.other

    by_layer: dict = {}
    for rect in rects:
        if not rect.is_empty:
            by_layer.setdefault(rect.layer, []).append(rect)

    survivors: List[Rect] = []
    for layer_rects in by_layer.values():
        # Nearest first: the arriving object travels along `direction`, so
        # the nearest facing edge is the one farthest AGAINST it — smallest
        # sign-adjusted coordinate first.
        layer_rects.sort(key=lambda r: sign * r.edge_coord(facing))
        general = IntervalSet()  # shadowers safe against every arrival
        general_strict = IntervalSet()  # ... that also dominate no_overlap
        per_net: dict = {}
        for rect in layer_rects:
            lo, hi = rect.span(perp)
            cover = general_strict if rect.no_overlap else general
            own = per_net.get(rect.net)
            shadowed = cover.contains(lo, hi) or (
                own is not None and own.contains(lo, hi)
            )
            if not shadowed:
                survivors.append(rect)
            # Register this rect as a shadower for rects behind it.
            if rect.net is None or rect.net not in arrival_nets:
                general.add(lo, hi)
                if rect.no_overlap:
                    general_strict.add(lo, hi)
            else:
                per_net.setdefault(rect.net, IntervalSet()).add(lo, hi)
    return survivors

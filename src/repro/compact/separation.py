"""Pairwise separation constraints for successive compaction.

Given one rectangle of the moving object and one of the main structure plus
the compaction direction, decide whether the pair constrains the motion and,
if so, how far the object may travel.  Encodes the paper's special cases:

* layers listed as "not relevant during this compaction step" are skipped;
* "edges on the same potential are not considered during compaction, because
  they can be merged" — same-net pairs on connectable layers are skipped;
* the per-rectangle *no_overlap* property forbids overlap even between layer
  pairs that carry no spacing rule (parasitic-capacitance protection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence

from ..geometry import Direction, Rect
from ..tech import Technology

#: Sentinel for "this pair never constrains the motion".
UNCONSTRAINED = None


@dataclass
class PairConstraint:
    """One active separation constraint between a moving and a fixed rect.

    ``max_travel`` is the largest signed travel (along the compaction
    direction, positive = with the direction) the moving rect may make before
    the required ``spacing`` to the fixed rect is violated.
    """

    moving: Rect
    fixed: Rect
    spacing: int
    max_travel: int


def required_spacing(
    tech: Technology,
    moving: Rect,
    fixed: Rect,
    ignore_layers: FrozenSet[str],
) -> Optional[int]:
    """Spacing the pair must keep, or ``None`` when unconstrained.

    A result of 0 means "may touch but not overlap" (the no_overlap case);
    any rule-driven spacing comes back verbatim.
    """
    if moving.layer in ignore_layers or fixed.layer in ignore_layers:
        return UNCONSTRAINED
    if moving.is_empty or fixed.is_empty:
        return UNCONSTRAINED

    same_net = (
        moving.net is not None
        and moving.net == fixed.net
        and tech.connectable(moving.layer, fixed.layer)
    )
    if same_net:
        return UNCONSTRAINED

    rule = tech.min_space(moving.layer, fixed.layer)
    if rule is not None:
        return rule

    if (moving.no_overlap or fixed.no_overlap) and (
        tech.layer(moving.layer).conducting and tech.layer(fixed.layer).conducting
    ):
        return 0
    return UNCONSTRAINED


def pair_travel(moving: Rect, fixed: Rect, direction: Direction, spacing: int) -> Optional[int]:
    """Max travel of *moving* along *direction* keeping *spacing* to *fixed*.

    Returns ``None`` when the pair does not constrain motion along this axis
    (their perpendicular spans, grown by the spacing, do not overlap).
    """
    perp = direction.axis.other
    margin = max(spacing, 0)
    if not moving.spans_overlap(fixed, perp, margin=margin):
        return None
    sign = 1 if direction.is_positive else -1
    lead = moving.edge_coord(direction)
    face = fixed.edge_coord(direction.opposite)
    return (face - lead) * sign - spacing


def gather_constraints(
    tech: Technology,
    moving_rects: Sequence[Rect],
    fixed_rects: Sequence[Rect],
    direction: Direction,
    ignore_layers: Iterable[str] = (),
) -> List[PairConstraint]:
    """All active pair constraints for one compaction step."""
    ignore = frozenset(ignore_layers)
    constraints: List[PairConstraint] = []
    for moving in moving_rects:
        for fixed in fixed_rects:
            spacing = required_spacing(tech, moving, fixed, ignore)
            if spacing is UNCONSTRAINED:
                continue
            travel = pair_travel(moving, fixed, direction, spacing)
            if travel is None:
                continue
            constraints.append(PairConstraint(moving, fixed, spacing, travel))
    return constraints


class IntervalSet:
    """A union of 1-D closed intervals with containment queries."""

    def __init__(self) -> None:
        self._spans: List[List[int]] = []  # sorted, disjoint [lo, hi]

    def add(self, lo: int, hi: int) -> None:
        """Insert [lo, hi], merging overlapping/adjacent intervals."""
        if lo >= hi:
            return
        import bisect

        index = bisect.bisect_left(self._spans, [lo, hi])
        if index > 0 and self._spans[index - 1][1] >= lo:
            index -= 1
        new_lo, new_hi = lo, hi
        while index < len(self._spans) and self._spans[index][0] <= new_hi:
            new_lo = min(new_lo, self._spans[index][0])
            new_hi = max(new_hi, self._spans[index][1])
            del self._spans[index]
        self._spans.insert(index, [new_lo, new_hi])

    def contains(self, lo: int, hi: int) -> bool:
        """True when [lo, hi] lies inside one merged interval."""
        import bisect

        index = bisect.bisect_right(self._spans, [lo + 1]) - 1
        if index < 0:
            return False
        span = self._spans[index]
        return span[0] <= lo and hi <= span[1]


def frontier_filter(
    rects: Sequence[Rect],
    direction: Direction,
    arrival_nets: FrozenSet[str] = frozenset(),
) -> List[Rect]:
    """Drop fixed rects fully shadowed behind nearer same-layer geometry.

    The paper's "only outer edges of the main object have to be kept in the
    data structure" speed-up.  A rect whose perpendicular span is covered by
    nearer same-layer rects can never bind — with two soundness conditions:

    * a shadower whose net the arriving object carries might itself be
      skipped by the same-potential rule, so it may only shadow rects of its
      own net (``arrival_nets`` names the arriving object's nets);
    * a plain rect may not shadow a ``no_overlap`` rect — when no spacing
      rule exists, only the latter constrains the motion.

    Implemented as a nearest-first sweep over interval unions: O(n log n)
    per compaction step instead of the naive all-pairs scan.
    """
    facing = direction.opposite
    sign = 1 if direction.is_positive else -1
    perp = direction.axis.other

    by_layer: dict = {}
    for rect in rects:
        if not rect.is_empty:
            by_layer.setdefault(rect.layer, []).append(rect)

    survivors: List[Rect] = []
    for layer_rects in by_layer.values():
        # Nearest first: the arriving object travels along `direction`, so
        # the nearest facing edge is the one farthest AGAINST it — smallest
        # sign-adjusted coordinate first.
        layer_rects.sort(key=lambda r: sign * r.edge_coord(facing))
        general = IntervalSet()  # shadowers safe against every arrival
        general_strict = IntervalSet()  # ... that also dominate no_overlap
        per_net: dict = {}
        for rect in layer_rects:
            lo, hi = rect.span(perp)
            cover = general_strict if rect.no_overlap else general
            own = per_net.get(rect.net)
            shadowed = cover.contains(lo, hi) or (
                own is not None and own.contains(lo, hi)
            )
            if not shadowed:
                survivors.append(rect)
            # Register this rect as a shadower for rects behind it.
            if rect.net is None or rect.net not in arrival_nets:
                general.add(lo, hi)
                if rect.no_overlap:
                    general_strict.add(lo, hi)
            else:
                per_net.setdefault(rect.net, IntervalSet()).add(lo, hi)
    return survivors

"""The successive compactor (Sec. 2.3).

"In contrast to general compaction approaches, the compaction is done
successively by involving only one new object in each step.  Thus, only outer
edges of the main object have to be kept in the data structure and no general
edge graph must be created."

One :meth:`Compactor.compact` call:

1. computes all active pair constraints between the moving object and the
   main structure (rule spacing, same-potential skipping, no_overlap);
2. while the binding constraint involves a *variable* edge, shrinks that edge
   just far enough to hand the binding role to the next constraint, rebuilding
   dependent geometry (contact arrays etc.) — Fig. 5b;
3. translates the object by the final travel and merges it into the main
   structure;
4. auto-connects same-potential geometry separated along the compaction axis
   by stretching the nearer rect across the gap — Fig. 5a.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..db import LayoutObject
from ..geometry import Axis, Direction, Rect
from ..obs import get_logger, get_tracer
from ..obs.provenance import get_recorder
from .separation import (
    PairConstraint,
    _pair_profile,
    bridge_profile,
    frontier_filter,
    gather_constraints,
    gather_constraints_grouped,
    pair_travel,
    required_spacing,
)

#: Hard cap on variable-edge iterations per compaction step.
MAX_SHRINK_ROUNDS = 64

log = get_logger("compact")


@dataclass
class CompactionResult:
    """Outcome record of one compaction step."""

    travel: int
    direction: Direction
    shrunk_edges: int = 0
    connected: int = 0
    merged_rects: List[Rect] = field(default_factory=list)


class Compactor:
    """Successive compactor bound to nothing but a flag set.

    ``variable_edges`` switches the Fig. 5b optimization; ``auto_connect``
    switches the Fig. 5a same-potential connection; ``use_frontier`` enables
    the outer-edge pruning speed-up.  All default on, matching the paper.

    ``use_index`` routes the hot scans (frontier pruning, candidate
    gathering, auto-connect resident lookup, bridge blocking) through the
    persistent per-object :class:`~repro.compact.index.FrontierIndex`
    instead of per-step rebuilds.  Results are identical either way — the
    differential harness races both modes — so the flag exists for that
    comparison and as an escape hatch, not as a semantic switch.
    """

    def __init__(
        self,
        variable_edges: bool = True,
        auto_connect: bool = True,
        use_frontier: bool = True,
        use_index: bool = True,
    ) -> None:
        self.variable_edges = variable_edges
        self.auto_connect = auto_connect
        self.use_frontier = use_frontier
        self.use_index = use_index
        #: Lifetime count of :meth:`compact` invocations.  The search-tree
        #: order optimizer is specified as "one compaction per distinct
        #: order prefix"; tests and benchmarks assert against this counter.
        self.calls = 0

    # ------------------------------------------------------------------
    def compact(
        self,
        main: LayoutObject,
        obj: LayoutObject,
        direction: Direction,
        ignore_layers: Iterable[str] = (),
    ) -> CompactionResult:
        """Compact *obj* against *main* along *direction* and merge it.

        *obj* is translated in place (so the caller's handle shows the final
        position) and its geometry is copied into *main*.  Layers named in
        *ignore_layers* are "not relevant during this compaction step"; their
        same-potential geometry is connected automatically afterwards.
        """
        if main.tech is not obj.tech:
            raise ValueError("cannot compact objects from different technologies")
        self.calls += 1
        tracer = get_tracer()
        with tracer.span(
            "compact.step", obj=obj.name, into=main.name, direction=direction.name
        ):
            result = self._compact_step(main, obj, direction, ignore_layers)
        recorder = get_recorder()
        if recorder.enabled:
            step = recorder.next_step()
            for rect in result.merged_rects:
                prov = rect.prov
                if prov is not None and prov.step is None:
                    rect.prov = prov.with_step(step)
            if recorder.capture_stages:
                recorder.record_stage(
                    main,
                    f"step {step}: {obj.name} → {main.name} {direction.name}",
                    travel=result.travel,
                    shrunk_edges=result.shrunk_edges,
                    connected=result.connected,
                )
        tracer.count("compact.steps")
        tracer.count("compact.merged_rects", len(result.merged_rects))
        tracer.count("compact.relaxed_edges", result.shrunk_edges)
        tracer.count("compact.auto_connects", result.connected)
        if log.isEnabledFor(10):  # logging.DEBUG
            log.debug(
                "step %d: %s -> %s %s travel=%d shrunk=%d connected=%d",
                self.calls, obj.name, main.name, direction.name,
                result.travel, result.shrunk_edges, result.connected,
            )
        return result

    def _compact_step(
        self,
        main: LayoutObject,
        obj: LayoutObject,
        direction: Direction,
        ignore_layers: Iterable[str],
    ) -> CompactionResult:
        result = CompactionResult(travel=0, direction=direction)

        if main.is_empty():
            # First object: simply copied into the data structure (Sec. 2.5).
            result.merged_rects = main.merge(obj)
            return result

        with get_tracer().span("compact.solve", direction=direction.name):
            travel, shrunk = self._resolve_travel(
                main, obj, direction, ignore_layers
            )
        result.travel = travel
        result.shrunk_edges = shrunk

        obj.translate(direction.dx * travel, direction.dy * travel)
        result.merged_rects = main.merge(obj)

        if self.auto_connect:
            result.connected = self._auto_connect(main, result.merged_rects, direction)
        return result

    # ------------------------------------------------------------------
    # travel computation with variable-edge shrinking
    # ------------------------------------------------------------------
    def _resolve_travel(
        self,
        main: LayoutObject,
        obj: LayoutObject,
        direction: Direction,
        ignore_layers: Iterable[str],
    ) -> Tuple[int, int]:
        """Final travel after exhausting variable-edge moves."""
        ignore = tuple(ignore_layers)
        tracer = get_tracer()
        shrunk = 0
        last_travel: Optional[int] = None
        for _ in range(MAX_SHRINK_ROUNDS if self.variable_edges else 1):
            tracer.count("compact.shrink_rounds")
            constraints = self._constraints(main, obj, direction, ignore)
            if not constraints:
                # Relaxation may have deactivated the final constraint; the
                # bounding-box fallback must never regress below the travel
                # the constrained state already permitted.
                fallback = self._fallback_travel(main, obj, direction)
                if last_travel is not None:
                    fallback = max(fallback, last_travel)
                return fallback, shrunk
            travel = min(c.max_travel for c in constraints)
            last_travel = travel
            if not self.variable_edges:
                return travel, shrunk

            binding = [c for c in constraints if c.max_travel == travel]
            loose = [c for c in constraints if c.max_travel > travel]
            target = min((c.max_travel for c in loose), default=None)
            # If any binding constraint involves only fixed edges, no amount
            # of shrinking elsewhere can increase the travel: stop here.
            if any(
                not self._constraint_relaxable(direction, c) for c in binding
            ):
                return travel, shrunk
            moved = False
            for constraint in binding:
                if self._relax_constraint(main, obj, direction, constraint, travel, target):
                    moved = True
                    shrunk += 1
            if not moved:
                return travel, shrunk
        constraints = self._constraints(main, obj, direction, ignore)
        if not constraints:
            return self._fallback_travel(main, obj, direction), shrunk
        return min(c.max_travel for c in constraints), shrunk

    def _constraints(
        self,
        main: LayoutObject,
        obj: LayoutObject,
        direction: Direction,
        ignore: Tuple[str, ...],
    ) -> List[PairConstraint]:
        moving = obj.nonempty_rects
        tracer = get_tracer()
        if self.use_frontier and self.use_index:
            index = main.frontier_index()
            arrival_nets = frozenset(
                rect.net for rect in moving if rect.net is not None
            )
            groups = index.frontier_groups(direction, arrival_nets)
            survivors = sum(len(rects) for _, rects in groups)
            tracer.count("compact.frontier_dropped", index.nonempty - survivors)
            groups = self._prune_window(
                main.tech, moving, groups, direction, ignore, tracer
            )
            constraints = gather_constraints_grouped(
                main.tech, moving, groups, direction, ignore
            )
            tracer.count("compact.constraints", len(constraints))
            return constraints
        fixed = main.nonempty_rects
        if self.use_frontier:
            arrival_nets = frozenset(
                rect.net for rect in moving if rect.net is not None
            )
            before = len(fixed)
            fixed = frontier_filter(fixed, direction, arrival_nets)
            tracer.count("compact.frontier_dropped", before - len(fixed))
        constraints = gather_constraints(
            main.tech, moving, fixed, direction, ignore
        )
        tracer.count("compact.constraints", len(constraints))
        return constraints

    @staticmethod
    def _prune_window(
        tech,
        moving: Sequence[Rect],
        groups: List[Tuple[str, List[Rect]]],
        direction: Direction,
        ignore: Tuple[str, ...],
        tracer,
    ) -> List[Tuple[str, List[Rect]]]:
        """Drop frontier rects the arriving object cannot reach sideways.

        A pair only constrains motion when the perpendicular spans, grown by
        the pair's spacing, overlap.  With ``[lo, hi]`` the union of the
        moving rects' perpendicular spans and ``S`` the largest spacing any
        moving layer carries against the fixed layer, a fixed rect whose span
        fails ``lo - S < r2 and r1 - S < hi`` fails the overlap test for
        every moving rect (each span sits inside ``[lo, hi]``, each spacing
        is at most ``S``), so dropping it cannot change any constraint —
        and surviving rects keep their frontier order, preserving the naive
        loop's pair ordering exactly.
        """
        perp = direction.axis.other
        lo = hi = None
        moving_layers = set()
        for rect in moving:
            if rect.layer in ignore or rect.is_empty:
                continue
            m1, m2 = rect.span(perp)
            if lo is None or m1 < lo:
                lo = m1
            if hi is None or m2 > hi:
                hi = m2
            moving_layers.add(rect.layer)
        if lo is None:
            tracer.count(
                "compact.index_window_dropped",
                sum(len(rects) for _, rects in groups),
            )
            return []
        dropped = 0
        pruned: List[Tuple[str, List[Rect]]] = []
        horizontal = perp is Axis.HORIZONTAL
        for flayer, frects in groups:
            if flayer in ignore:
                continue  # gather skips the whole group anyway
            margin = None
            for mlayer in moving_layers:
                profile = _pair_profile(tech, mlayer, flayer)
                if profile is None:
                    continue
                spacing = profile[0] or 0
                if margin is None or spacing > margin:
                    margin = spacing
            if margin is None:
                # No moving layer can constrain against this fixed layer.
                dropped += len(frects)
                continue
            wlo = lo - margin
            whi = hi + margin
            if horizontal:
                keep = [r for r in frects if wlo < r.x2 and r.x1 < whi]
            else:
                keep = [r for r in frects if wlo < r.y2 and r.y1 < whi]
            dropped += len(frects) - len(keep)
            if keep:
                pruned.append((flayer, keep))
        tracer.count("compact.index_window_dropped", dropped)
        return pruned

    def _fallback_travel(
        self, main: LayoutObject, obj: LayoutObject, direction: Direction
    ) -> int:
        """With no active constraint, abut the bounding boxes flush."""
        main_box = main.bbox()
        obj_box = obj.bbox()
        if main_box is None or obj_box is None:
            return 0
        sign = 1 if direction.is_positive else -1
        lead = obj_box.edge_coord(direction)
        face = main_box.edge_coord(direction.opposite)
        return (face - lead) * sign

    def _constraint_relaxable(
        self, direction: Direction, constraint: PairConstraint
    ) -> bool:
        """True when some variable edge could weaken this constraint."""
        perp = direction.axis.other
        a1, a2 = constraint.moving.span(perp)
        b1, b2 = constraint.fixed.span(perp)
        if a2 <= b1 or b2 <= a1:  # corner conflict: perpendicular edges
            neg_dir, pos_dir = direction.perpendiculars
            if a2 <= b1:
                return (
                    constraint.fixed.edge_variable(neg_dir)
                    or constraint.moving.edge_variable(pos_dir)
                )
            return (
                constraint.fixed.edge_variable(pos_dir)
                or constraint.moving.edge_variable(neg_dir)
            )
        return (
            constraint.fixed.edge_variable(direction.opposite)
            or constraint.moving.edge_variable(direction)
        )

    def _relax_constraint(
        self,
        main: LayoutObject,
        obj: LayoutObject,
        direction: Direction,
        constraint: PairConstraint,
        travel: int,
        target: Optional[int],
    ) -> bool:
        """Try to shrink a variable edge of the binding pair.

        Two geometric situations arise:

        * the rects genuinely face each other across the compaction axis —
          shrink a facing edge just far enough that the pair's travel reaches
          the next-binding constraint's travel (*target*);
        * the rects only conflict through the corner-spacing margin (their
          perpendicular spans do not overlap) — shrink a perpendicular edge
          until the perpendicular gap reaches the required spacing, which
          deactivates the constraint entirely.

        Returns True when an edge actually moved.
        """
        perp = direction.axis.other
        a1, a2 = constraint.moving.span(perp)
        b1, b2 = constraint.fixed.span(perp)
        if a2 <= b1 or b2 <= a1:
            return self._relax_corner(main, obj, direction, constraint)
        return self._relax_facing(main, obj, direction, constraint, travel, target)

    def _relax_facing(
        self,
        main: LayoutObject,
        obj: LayoutObject,
        direction: Direction,
        constraint: PairConstraint,
        travel: int,
        target: Optional[int],
    ) -> bool:
        """Shrink a facing edge along the compaction axis (Fig. 5b)."""
        sign = 1 if direction.is_positive else -1
        fixed_edge_dir = direction.opposite  # main-side edge faces the arrival
        moving_edge_dir = direction  # object-side leading edge

        # Shrink as little as possible: just enough to stop being binding.
        if target is not None:
            delta = target - travel
            if delta <= 0:
                delta = 1
        else:
            delta = None  # move to the limit

        fixed, moving = constraint.fixed, constraint.moving
        if fixed.edge_variable(fixed_edge_dir):
            face = fixed.edge_coord(fixed_edge_dir)
            goal = (
                main.shrink_limit(fixed, fixed_edge_dir)
                if delta is None
                else face + sign * delta
            )
            achieved = main.move_edge(fixed, fixed_edge_dir, goal)
            if achieved != face:
                return True
        if moving.edge_variable(moving_edge_dir):
            lead = moving.edge_coord(moving_edge_dir)
            goal = (
                obj.shrink_limit(moving, moving_edge_dir)
                if delta is None
                else lead - sign * delta
            )
            achieved = obj.move_edge(moving, moving_edge_dir, goal)
            return achieved != lead
        return False

    def _relax_corner(
        self,
        main: LayoutObject,
        obj: LayoutObject,
        direction: Direction,
        constraint: PairConstraint,
    ) -> bool:
        """Open the perpendicular gap of a corner-only conflict.

        The pair only constrains motion because their perpendicular spans,
        grown by the spacing, overlap; widening the true perpendicular gap to
        the spacing removes the constraint without costing any travel.
        """
        perp = direction.axis.other
        spacing = constraint.spacing
        moving, fixed = constraint.moving, constraint.fixed
        a1, a2 = moving.span(perp)
        b1, b2 = fixed.span(perp)
        neg_dir, pos_dir = direction.perpendiculars

        candidates = []  # (owner, rect, edge direction, goal coordinate)
        if a2 <= b1:  # moving sits on the low side of fixed
            candidates.append((main, fixed, neg_dir, a2 + spacing))
            candidates.append((obj, moving, pos_dir, b1 - spacing))
        else:  # b2 <= a1: moving sits on the high side
            candidates.append((main, fixed, pos_dir, a1 - spacing))
            candidates.append((obj, moving, neg_dir, b2 + spacing))

        for owner, rect, edge_dir, goal in candidates:
            if not rect.edge_variable(edge_dir):
                continue
            before = rect.edge_coord(edge_dir)
            achieved = owner.move_edge(rect, edge_dir, goal)
            if achieved != before:
                return True
        return False

    # ------------------------------------------------------------------
    # same-potential auto-connection (Fig. 5a)
    # ------------------------------------------------------------------
    def _auto_connect(
        self, main: LayoutObject, new_rects: Sequence[Rect], direction: Direction
    ) -> int:
        """Stretch same-net, same-layer rects across axis gaps to connect.

        "The geometries of these layers are connected automatically after the
        compaction if they are on the same potential."  The stretch is only
        applied when the bridging strip does not cross foreign geometry on
        the same layer (which would create a short).
        """
        new_ids = set(map(id, new_rects))
        # Bucket residents by (net, layer) once: only same-net same-layer
        # pairs can connect, so the arrival loop skips everything else.  The
        # index already keeps those buckets; fetch (and filter, at this same
        # pre-loop moment) only the keys the arrivals will ask for.
        index = main.frontier_index() if self.use_index else None
        residents: dict = {}
        if index is not None:
            for rect in new_rects:
                if rect.net is None or rect.is_empty:
                    continue
                key = (rect.net, rect.layer)
                if key not in residents:
                    residents[key] = [
                        r
                        for r in index.residents(*key)
                        if not r.is_empty and id(r) not in new_ids
                    ]
        else:
            for rect in main.nonempty_rects:
                if id(rect) not in new_ids and rect.net is not None:
                    residents.setdefault((rect.net, rect.layer), []).append(rect)
        connected = 0
        perp = direction.axis.other
        sign = 1 if direction.is_positive else -1

        for arrival in new_rects:
            if arrival.net is None or arrival.is_empty:
                continue
            for resident in residents.get((arrival.net, arrival.layer), ()):
                # Stretching moves the resident's whole edge, so the landing
                # must cover the resident's full perpendicular span —
                # otherwise the stretch would spill past the arrival.
                a1, a2 = arrival.span(perp)
                r1, r2 = resident.span(perp)
                if not (a1 <= r1 and r2 <= a2):
                    continue
                # Gap along the axis between the resident's facing edge and
                # the arrival's leading edge: the arrival travelled along
                # *direction* and stopped short of the resident, so the
                # separation is positive when face lies beyond lead in the
                # direction of travel.
                face = resident.edge_coord(direction.opposite)
                lead = arrival.edge_coord(direction)
                gap = (face - lead) * sign
                if gap <= 0:
                    continue  # already touching or overlapping
                bridge = self._bridge_rect(arrival, resident, direction)
                if bridge is None:
                    continue
                blocked = (
                    index.bridge_blocked(bridge, arrival.net)
                    if index is not None
                    else self._bridge_blocked(main, bridge, arrival.net)
                )
                if blocked:
                    continue
                main.move_stretch(resident, direction.opposite, lead)
                if resident.prov is not None and arrival.prov is not None:
                    resident.prov = resident.prov.derived(
                        "auto_connect", arrival.prov
                    )
                connected += 1
        return connected

    def _bridge_rect(
        self, arrival: Rect, resident: Rect, direction: Direction
    ) -> Optional[Rect]:
        """The strip the stretched resident would newly occupy.

        The resident's whole edge moves, so the strip spans the resident's
        full perpendicular extent.
        """
        perp = direction.axis.other
        lo, hi = resident.span(perp)
        if lo >= hi:
            return None
        face = resident.edge_coord(direction.opposite)
        lead = arrival.edge_coord(direction)
        coords = sorted((face, lead))
        if direction.axis is direction.axis.HORIZONTAL:
            return Rect(coords[0], lo, coords[1], hi, resident.layer, resident.net)
        return Rect(lo, coords[0], hi, coords[1], resident.layer, resident.net)

    def _bridge_blocked(self, main: LayoutObject, bridge: Rect, net: str) -> bool:
        """True when stretching across *bridge* would violate a rule.

        Checked against every foreign-net rect: same-layer spacing (shorts),
        cross-layer spacing, and EXTEND relationships — a poly bridge must
        never cross diffusion (it would create a transistor).  The per-rect
        rule questions are hoisted to one memoized :func:`bridge_profile`
        lookup per layer pair.  (The indexed path answers this through
        :meth:`FrontierIndex.bridge_blocked`, which additionally skips whole
        layers by bucket envelope.)
        """
        tech = main.tech
        bridge_layer = bridge.layer
        for rect in main.nonempty_rects:
            profile = bridge_profile(tech, bridge_layer, rect.layer)
            if profile is None:
                continue  # no spacing rule, no device rule: cannot block
            connect, spacing, forms_device = profile
            if connect and rect.net == net:
                continue
            if forms_device and bridge.intersects(rect):
                return True
            if spacing is not None and bridge.grown(spacing).intersects(rect):
                return True
        return False
